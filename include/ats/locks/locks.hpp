#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/timing.hpp"

namespace ats {

/// Bounded-then-yield waiter used by every spinning lock here.  A few
/// hundred pause iterations cover the multicore case (the holder is
/// running and will release soon); after that we yield so oversubscribed
/// or single-core hosts — the CI box included — make forward progress
/// instead of burning the holder's timeslice.
class SpinWait {
 public:
  void spin() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      cpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 256;
  int spins_ = 0;
};

/// Test-and-test-and-set spinlock.  The baseline "simple" lock of §3.2:
/// cheap uncontended, unfair and coherence-noisy when contended.
class SpinLock {
 public:
  void lock() {
    SpinWait w;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) w.spin();
    }
  }

  bool tryLock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// Classic two-counter ticket lock: FIFO-fair, but every waiter spins on
/// the single `serving_` word, so the release invalidates every waiter's
/// cache line — the scaling cliff the PTLock's waiting array removes.
class TicketLock {
 public:
  void lock() {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait w;
    while (serving_.load(std::memory_order_acquire) != ticket) w.spin();
  }

  void unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> next_{0};
  alignas(64) std::atomic<std::uint64_t> serving_{0};
};

/// MCS queue lock: waiters link into an explicit queue and spin on their
/// own node.  Included as the §3.2 comparison point ("PTLocks perform as
/// well as more complex designs such as MCS").
///
/// The queue node lives in thread-local storage keyed per thread, not per
/// (thread, lock) pair, so a thread may hold at most one McsLock at a
/// time.  Fine for the scheduler and benches; do not nest two McsLocks.
class McsLock {
 public:
  void lock() {
    Node& node = localNode();
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(true, std::memory_order_relaxed);
    Node* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(&node, std::memory_order_release);
      SpinWait w;
      while (node.locked.load(std::memory_order_acquire)) w.spin();
    }
  }

  void unlock() {
    Node& node = localNode();
    Node* next = node.next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        return;
      }
      SpinWait w;
      while ((next = node.next.load(std::memory_order_acquire)) == nullptr)
        w.spin();
    }
    next->locked.store(false, std::memory_order_release);
  }

 private:
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  static Node& localNode() {
    static thread_local Node node;
    return node;
  }

  std::atomic<Node*> tail_{nullptr};
};

/// Ticket lock augmented with a waiting array (TWA, Dice & Kogan).  Far
/// waiters park on a hashed slot of a small array and only the threads
/// near the front spin on `serving_`, bounding the release broadcast.
/// Correctness rests solely on the ticket counters; the array is a
/// wake-up hint.
class TWALock {
 public:
  void lock() {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait w;
    for (;;) {
      const std::uint64_t serving =
          serving_.load(std::memory_order_acquire);
      if (serving == ticket) return;
      if (ticket - serving <= kNearThreshold) {
        w.spin();  // close to the front: spin on serving_ directly
      } else {
        // Far from the front: park on the hashed array slot so releases
        // do not broadcast to us through serving_ — that bounded
        // invalidation set is the whole point of TWA.  The slot recheck
        // is bounded (not unconditional) so a nudge that fired between
        // the outer serving_ read and `seen` cannot strand us.
        const std::uint64_t seen =
            waitArray_[slotOf(ticket)].load(std::memory_order_acquire);
        for (int i = 0; i < kFarSpinBound &&
                        waitArray_[slotOf(ticket)].load(
                            std::memory_order_acquire) == seen;
             ++i) {
          w.spin();
        }
      }
    }
  }

  void unlock() {
    const std::uint64_t nextServing =
        serving_.load(std::memory_order_relaxed) + 1;
    serving_.store(nextServing, std::memory_order_release);
    // Nudge the slot where the soon-to-be-near waiter parks so it
    // promotes itself to direct spinning.
    waitArray_[slotOf(nextServing + kNearThreshold)].fetch_add(
        1, std::memory_order_release);
  }

 private:
  static constexpr std::uint64_t kNearThreshold = 1;
  static constexpr int kFarSpinBound = 1024;
  static constexpr std::size_t kSlots = 64;

  static std::size_t slotOf(std::uint64_t ticket) {
    return static_cast<std::size_t>(ticket) & (kSlots - 1);
  }

  alignas(64) std::atomic<std::uint64_t> next_{0};
  alignas(64) std::atomic<std::uint64_t> serving_{0};
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> v{0};

    std::uint64_t load(std::memory_order o) const { return v.load(o); }
    void fetch_add(std::uint64_t d, std::memory_order o) { v.fetch_add(d, o); }
  };
  PaddedCounter waitArray_[kSlots];
};

/// PTLock — the paper's ticket lock with a per-thread waiting array
/// (§3.2).  Ticket t spins on its own padded slot `grants_[t % n]` until
/// the previous holder writes t there, so a release touches exactly one
/// waiter's cache line and hand-off cost stays flat as threads grow.
/// `n` must be at least the number of threads that can contend.
class PTLock {
 public:
  explicit PTLock(std::size_t maxThreads = 64)
      : slots_(std::bit_ceil(maxThreads < 2 ? std::size_t{2} : maxThreads)),
        mask_(slots_ - 1),
        grants_(std::make_unique<GrantSlot[]>(slots_)) {
    grants_[0].v.store(0, std::memory_order_relaxed);  // ticket 0 may enter
  }

  void lock() {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait w;
    while (grants_[ticket & mask_].v.load(std::memory_order_acquire) !=
           ticket) {
      w.spin();
    }
    held_ = ticket;
  }

  /// Take the next ticket only when it is already granted (lock free and
  /// no queue).  Never joins the FIFO queue, so pollers cannot convoy
  /// behind a preempted holder on oversubscribed hosts.
  bool tryLock() {
    std::uint64_t ticket = next_.load(std::memory_order_relaxed);
    if (grants_[ticket & mask_].v.load(std::memory_order_acquire) != ticket)
      return false;
    if (!next_.compare_exchange_strong(ticket, ticket + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;
    }
    held_ = ticket;
    return true;
  }

  void unlock() {
    const std::uint64_t nextTicket = held_ + 1;
    grants_[nextTicket & mask_].v.store(nextTicket,
                                        std::memory_order_release);
  }

 private:
  struct alignas(64) GrantSlot {
    // "No ticket granted here yet": any value whose low bits cannot
    // collide with a live ticket for this slot.
    std::atomic<std::uint64_t> v{~std::uint64_t{0}};
  };

  const std::size_t slots_;
  const std::uint64_t mask_;
  std::unique_ptr<GrantSlot[]> grants_;
  alignas(64) std::atomic<std::uint64_t> next_{0};
  // Ticket of the current holder.  Only ever touched by the thread that
  // owns the lock; the grant release/acquire chain orders the hand-off.
  std::uint64_t held_ = 0;
};

/// DTLock — the paper's Delegation Ticket Lock (§3.3, Listing 5).  A
/// PTLock where a waiter may publish the *request* it would have executed
/// under the lock; the current holder then performs that work on the
/// waiter's behalf and posts the result, releasing the waiter without it
/// ever owning the lock.  One core ends up doing the scheduler's
/// critical-section work for everybody while the others keep their caches
/// on application data — that is the 4x of §3.4.
///
/// Two acquisition modes:
///   * `lock()` — plain FIFO acquire, for callers that must mutate state
///     themselves (e.g. draining their own add-buffer on overflow).
///   * `lockOrDelegate(cpu, item)` — publish "CPU `cpu` wants one item".
///     Returns true when the caller acquired the lock after all (it must
///     then do its own work, serve others, and unlock); false when the
///     holder served it — `item` carries the posted result and the caller
///     must NOT unlock.
///
/// Holder-side protocol between lock acquisition and `unlock()` — two
/// interchangeable forms:
///   * serve-one (Listing 5):    while (popWaiter(cpu)) serve(result);
///   * batched (§8 flat combining):
///       while ((n = popWaiters(cpus, maxN)) != 0)
///         serveBatch(cpus, results, n);
/// The batched form snapshots a run of queued requests in one pass over
/// the request array and publishes every answer behind a single release
/// fence, instead of paying one acquire probe of `next_` plus one
/// release store per waiter.  Both forms may be mixed freely; `served_`
/// advances identically.
///
/// Results travel through a slot owned by the requesting CPU, not by the
/// ticket.  That distinction is load-bearing: a served waiter applies no
/// back-pressure on the ticket chain (the holder moves on immediately),
/// so a ticket-indexed result slot could be recycled and overwritten
/// before a descheduled waiter ever looked at it.  The per-CPU slot can
/// only be rewritten by that CPU's *next* request, which cannot exist
/// until the waiter consumed this one.  Grant slots are written by
/// `unlock()` alone, so they keep the array-ticket-lock invariant that
/// every grant is consumed before the chain can lap the array.
///
/// Contract: `cpu` < maxCpus (16-bit), at most one concurrent
/// lockOrDelegate per cpu id, and a served item must never equal ~0 (the
/// internal "pending" sentinel) — task pointers never are.
class DTLock {
 public:
  explicit DTLock(std::size_t maxThreads = 64, std::size_t maxCpus = 64)
      : slots_(std::bit_ceil(maxThreads < 2 ? std::size_t{2} : maxThreads)),
        mask_(slots_ - 1),
        maxCpus_(maxCpus),
        grants_(std::make_unique<GrantSlot[]>(slots_)),
        requests_(std::make_unique<RequestSlot[]>(slots_)),
        results_(std::make_unique<ResultSlot[]>(maxCpus)) {
    assert(maxCpus_ >= 1 && maxCpus_ < (std::uint64_t{1} << kCpuBits));
    grants_[0].v.store(kLockGrant(0), std::memory_order_relaxed);
  }

  /// Take the lock iff it is free and nobody is queued; never joins the
  /// FIFO queue.  For adders that must not park a reserved ticket while
  /// preemptible (see the scheduler overflow paths).
  bool tryLock() { return tryAcquireFree(); }

  /// Plain FIFO acquire (never delegated).
  void lock() {
    if (tryAcquireFree()) return;
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait w;
    while (grants_[ticket & mask_].v.load(std::memory_order_acquire) !=
           kLockGrant(ticket)) {
      w.spin();
    }
    held_ = ticket;
    served_ = 0;
  }

  /// Delegating acquire.  True: lock acquired, caller is now the server.
  /// False: request was served; `item` holds the result.
  bool lockOrDelegate(std::uint64_t cpu, std::uintptr_t& item) {
    assert(cpu < maxCpus_);
    // Free and unqueued: take the lock without publishing anything.
    // Delegation only pays when somebody actually holds the lock; an
    // uncontended acquire should cost what a plain lock costs.
    if (tryAcquireFree()) return true;
    // Arm our response slot before publishing the request; the request's
    // release store orders the reset before any server's write.
    results_[cpu].v.store(kPendingResult, std::memory_order_relaxed);
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    requests_[ticket & mask_].v.store((ticket << kCpuBits) | cpu,
                                      std::memory_order_release);
    SpinWait w;
    for (;;) {
      if (grants_[ticket & mask_].v.load(std::memory_order_acquire) ==
          kLockGrant(ticket)) {
        held_ = ticket;
        served_ = 0;
        return true;
      }
      const std::uintptr_t r =
          results_[cpu].v.load(std::memory_order_acquire);
      if (r != kPendingResult) {
        item = r;
        return false;
      }
      w.spin();
    }
  }

  /// Holder only: is the next queued waiter a published delegation
  /// request?  If so report its CPU and keep it pending for `serve`.
  /// Stops (returns false) at the first waiter that wants the lock
  /// itself, or when nobody is waiting.
  bool popWaiter(std::uint64_t& cpu) {
    const std::uint64_t ticket = held_ + served_ + 1;
    if (ticket == next_.load(std::memory_order_acquire)) return false;
    const std::uint64_t req =
        requests_[ticket & mask_].v.load(std::memory_order_acquire);
    if ((req >> kCpuBits) != ticket) return false;  // wants the lock
    cpu = req & ((std::uint64_t{1} << kCpuBits) - 1);
    pendingCpu_ = cpu;
    return true;
  }

  /// Holder only: complete the waiter `popWaiter` just reported by
  /// posting `item` into its CPU slot.  The waiter never owns the lock.
  void serve(std::uintptr_t item) {
    assert(item != kPendingResult);
    results_[pendingCpu_].v.store(item, std::memory_order_release);
    ++served_;
  }

  /// Holder only: snapshot the run of consecutive delegation requests at
  /// the head of the queue — up to `maxN` of them — into `cpus` in ticket
  /// order.  One acquire read of `next_` bounds the whole pass (vs one
  /// per popWaiter round-trip); each request slot still needs its own
  /// acquire load, because that is the edge that makes the waiter's
  /// armed result slot visible.  Stops early at the first waiter that
  /// wants the lock itself (or has not published yet).  Does NOT consume:
  /// repeated calls re-report the same run until `serveBatch`/`serve`
  /// advances past it.
  std::size_t popWaiters(std::uint64_t* cpus, std::size_t maxN) {
    const std::uint64_t limit = next_.load(std::memory_order_acquire);
    std::uint64_t ticket = held_ + served_ + 1;
    std::size_t n = 0;
    while (n < maxN && ticket != limit) {
      const std::uint64_t req =
          requests_[ticket & mask_].v.load(std::memory_order_acquire);
      if ((req >> kCpuBits) != ticket) break;  // wants the lock
      cpus[n++] = req & ((std::uint64_t{1} << kCpuBits) - 1);
      ++ticket;
    }
    return n;
  }

  /// Holder only: answer the `n` waiters the last `popWaiters` reported,
  /// `items[i]` going to `cpus[i]`.  All result stores ride one release
  /// fence: the fence sequenced before the (relaxed) slot stores
  /// synchronizes with each waiter's acquire load of its own slot
  /// ([atomics.fences]), so every waiter still observes everything the
  /// holder did under the lock — at the cost of one fence per batch
  /// instead of one release store per waiter.  Under TSan the per-store
  /// release form is kept: fence/atomic synchronization support there
  /// has been uneven across toolchains, and a false positive would mask
  /// real findings in the suite this repo keeps clean.
  void serveBatch(const std::uint64_t* cpus, const std::uintptr_t* items,
                  std::size_t n) {
#if defined(__SANITIZE_THREAD__)
    constexpr bool kFenceBatch = false;
#elif defined(__has_feature)
    constexpr bool kFenceBatch = !__has_feature(thread_sanitizer);
#else
    constexpr bool kFenceBatch = true;
#endif
    if constexpr (kFenceBatch) {
      std::atomic_thread_fence(std::memory_order_release);
      for (std::size_t i = 0; i < n; ++i) {
        assert(items[i] != kPendingResult);
        results_[cpus[i]].v.store(items[i], std::memory_order_relaxed);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        assert(items[i] != kPendingResult);
        results_[cpus[i]].v.store(items[i], std::memory_order_release);
      }
    }
    served_ += n;
  }

  /// Holder only: pass the lock to the next unserved waiter (or leave it
  /// open for the next arrival).
  void unlock() {
    const std::uint64_t ticket = held_ + served_ + 1;
    grants_[ticket & mask_].v.store(kLockGrant(ticket),
                                    std::memory_order_release);
  }

 private:
  static constexpr std::uint64_t kCpuBits = 16;
  static constexpr std::uintptr_t kPendingResult = ~std::uintptr_t{0};

  static constexpr std::uint64_t kLockGrant(std::uint64_t t) { return t; }

  /// Take the next ticket iff it is already granted (lock free, nobody
  /// queued ahead).  Never steals from a queued waiter: once a ticket is
  /// outstanding, grant != next_ until the chain catches up.
  bool tryAcquireFree() {
    std::uint64_t ticket = next_.load(std::memory_order_relaxed);
    if (grants_[ticket & mask_].v.load(std::memory_order_acquire) !=
        kLockGrant(ticket)) {
      return false;
    }
    if (!next_.compare_exchange_strong(ticket, ticket + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;
    }
    held_ = ticket;
    served_ = 0;
    return true;
  }

  struct alignas(64) GrantSlot {
    std::atomic<std::uint64_t> v{~std::uint64_t{0}};
  };
  struct alignas(64) RequestSlot {
    std::atomic<std::uint64_t> v{~std::uint64_t{0}};
  };
  struct alignas(64) ResultSlot {
    std::atomic<std::uintptr_t> v{kPendingResult};
  };

  const std::size_t slots_;
  const std::uint64_t mask_;
  const std::uint64_t maxCpus_;
  std::unique_ptr<GrantSlot[]> grants_;
  std::unique_ptr<RequestSlot[]> requests_;
  std::unique_ptr<ResultSlot[]> results_;
  alignas(64) std::atomic<std::uint64_t> next_{0};
  // Holder-owned bookkeeping, ordered across hand-offs by the grant
  // release/acquire chain.
  std::uint64_t held_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t pendingCpu_ = 0;
};

}  // namespace ats
