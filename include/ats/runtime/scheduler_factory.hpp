#pragma once

#include <memory>

#include "runtime/runtime_config.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// Build the scheduler a RuntimeConfig asks for.  Lives in the runtime
/// layer (not sched) because RuntimeConfig does: layers below must not
/// include upward.  Each kind constructs its own design — WorkStealing
/// gets the real WorkStealingScheduler (it aliased to SyncScheduler
/// before PR 6) — and an out-of-enum kind aborts loudly instead of
/// returning nullptr.
std::unique_ptr<Scheduler> makeScheduler(const RuntimeConfig& config);

}  // namespace ats
