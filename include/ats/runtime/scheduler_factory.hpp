#pragma once

#include <memory>

#include "runtime/runtime_config.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// Build the scheduler a RuntimeConfig asks for.  Lives in the runtime
/// layer (not sched) because RuntimeConfig does: layers below must not
/// include upward.  WorkStealing maps to the delegation scheduler until
/// the work-stealing runtime lands (the fig7-9 stand-in needs the full
/// Runtime anyway).
std::unique_ptr<Scheduler> makeScheduler(const RuntimeConfig& config);

}  // namespace ats
