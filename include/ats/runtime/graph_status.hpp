#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <exception>

namespace ats {

/// Per-Runtime failure state for the current task graph (the window
/// between two quiescent points).
///
/// Two pieces, deliberately separate:
///
///   * the CANCELLATION TOKEN (`cancelled_`): one relaxed bool the
///     runtime's execute path loads per dequeued task.  Once set — by a
///     task body throwing or by Runtime::cancel() — subsequent ready
///     tasks are SKIPPED: body never runs, dependencies still release,
///     so the graph drains to quiescence instead of deadlocking on
///     successors that will never be satisfied.
///   * the STICKY FIRST-ERROR SLOT: a CAS-claimed exception_ptr holder.
///     Concurrent failures race one CAS; exactly one wins and stores
///     its exception_ptr, every later failure is counted but dropped —
///     taskwaitChecked() rethrows the FIRST captured error, mirroring
///     what a serial execution of the graph would have surfaced first.
///
/// Ordering: the skip check is best-effort by design.  A task already
/// dequeued when the token flips still runs — but a task that becomes
/// ready BECAUSE a poisoned task completed observes the token: the
/// poison store is sequenced before the failing task's release, and
/// the successor is only reachable through the scheduler's own
/// release/acquire hand-off.  That is exactly the guarantee the
/// drain needs (no successor of a failed task runs), without any
/// fence on the non-failing fast path.
///
/// `failed_`/`skipped_` are LIFETIME counters (they survive reset) so
/// tests and the fault-injection smoke can audit conservation across
/// batches: executed + failed + skipped == spawned.
class GraphStatus {
 public:
  /// The per-dequeue check: one relaxed load.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Record a captured task failure.  Returns true when this call is
  /// the one that flipped the token (the caller emits GraphCancelled).
  bool poison(std::exception_ptr error) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    int expected = kEmpty;
    if (errorState_.compare_exchange_strong(expected, kClaiming,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      firstError_ = std::move(error);
      errorState_.store(kSet, std::memory_order_release);
    }
    return !cancelled_.exchange(true, std::memory_order_acq_rel);
  }

  /// Caller-initiated abort: poison without an error.  A later
  /// taskwaitChecked() returns normally — cancellation the caller asked
  /// for is not a failure.  Returns true when this call flipped the
  /// token.
  bool cancel() {
    return !cancelled_.exchange(true, std::memory_order_acq_rel);
  }

  void noteSkip() { skipped_.fetch_add(1, std::memory_order_relaxed); }

  /// Move the first captured error out (empty when the graph only ever
  /// saw cancel() or nothing at all).  Quiescence-only: the caller
  /// guarantees no poison() is in flight, so kClaiming cannot be
  /// observed here.
  std::exception_ptr takeFirstError() {
    const int state = errorState_.load(std::memory_order_acquire);
    assert(state != kClaiming &&
           "takeFirstError before the graph drained to quiescence");
    if (state != kSet) return nullptr;
    std::exception_ptr error = std::move(firstError_);
    firstError_ = nullptr;
    errorState_.store(kEmpty, std::memory_order_relaxed);
    return error;
  }

  /// Re-arm for the next batch (quiescence-only).  Clears the token and
  /// the error slot; the lifetime failure/skip counters survive.
  void reset() {
    if (errorState_.load(std::memory_order_acquire) == kSet) {
      firstError_ = nullptr;
      errorState_.store(kEmpty, std::memory_order_relaxed);
    }
    cancelled_.store(false, std::memory_order_release);
  }

  std::uint64_t tasksFailed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasksSkipped() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kEmpty = 0;
  static constexpr int kClaiming = 1;
  static constexpr int kSet = 2;

  std::atomic<bool> cancelled_{false};
  std::atomic<int> errorState_{kEmpty};
  std::exception_ptr firstError_;
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> skipped_{0};
};

}  // namespace ats
