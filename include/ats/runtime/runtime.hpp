#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/failpoint.hpp"
#include "deps/access.hpp"
#include "deps/dependency_system.hpp"
#include "locks/locks.hpp"
#include "memory/allocator.hpp"
#include "runtime/graph_status.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/scheduler_factory.hpp"
#include "runtime/task.hpp"

namespace ats {

class Watchdog;  // runtime/watchdog.hpp; only the .cpp needs the type

/// The tasking runtime the paper benchmarks: worker threads (one per
/// Topology CPU, pinned when the host has the cores for it) pulling from
/// the configured scheduler, the configured §2 dependency subsystem in
/// front, and `spawn`/`taskwait` on top.
///
///   Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 4)));
///   rt.spawn({inout(x)}, [&x] { ++x; });
///   rt.taskwait();
///
/// Threading contract (the OmpSs model the §2 ASM assumes):
///   * spawn may be called from the owning "spawner" thread and from task
///     bodies; accesses to the SAME object must be registered by one
///     thread at a time (sibling tasks are created in program order).
///   * taskwait is spawner-only (a task body calling it would wait on
///     itself).  While waiting, the spawner helps execute ready tasks
///     through its own reserved CPU slot — the scheduler is built with
///     numCpus + 1 slots so the spawner is a first-class SPSC producer
///     and DTLock delegator without ever colliding with a worker's slot.
///   * when `RuntimeConfig::tracer` is set, workers emit §5 events
///     (TaskStart/End, WorkerIdleBegin/End) into their own per-CPU
///     streams and the scheduler emits its serve/drain/contention
///     events; with the default null tracer every site short-circuits
///     on one branch and the hot paths are byte-for-byte the untraced
///     ones.
///   * descriptors are reclaimed EAGERLY through the §4 allocator
///     (`RuntimeConfig::usePoolAllocator` picks pool vs system): each
///     carries a refcount covering its execution plus every way the
///     dependency chains can still reach its access nodes, and goes
///     back to the allocator the moment the count drains — so long
///     dependency graphs with no taskwait keep live descriptor memory
///     bounded by the in-flight window, not the spawn total.
class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Spawn a task whose body is any callable; captures up to
  /// Task::kInlineClosureBytes live inline in the descriptor, larger ones
  /// on the heap.  Returns as soon as the accesses are registered — the
  /// body runs when its dependencies resolve, on whatever worker gets it.
  ///
  /// Every overload funnels into registerAndSubmit — one descriptor
  /// set-up and registration path, so invariants (access-count check,
  /// in-flight accounting, completion wiring) live in exactly one place
  /// and the overloads differ only in how the body is installed.
  template <typename Fn>
  void spawn(std::initializer_list<Access> accesses, Fn&& fn) {
    spawn(std::span<const Access>(accesses.begin(), accesses.size()),
          std::forward<Fn>(fn));
  }

  /// Span spawn for access lists whose arity is only known at run time —
  /// the apps layer's halo tasks (a boundary block drops a neighbor
  /// access) build a small Access array and pass it here.  Braced lists
  /// still bind to the initializer_list overload above.
  template <typename Fn>
  void spawn(std::span<const Access> accesses, Fn&& fn) {
    Task* task = allocateTask();
    try {
      installClosure(task, std::forward<Fn>(fn));
    } catch (...) {
      // Closure construction/spill failed (copy ctor threw, or the
      // closure_spill failpoint fired): the descriptor was never
      // registered, so dropping its execution reference reclaims it and
      // conservation holds — liveDescriptors() still returns to zero.
      task->dropRef();
      throw;
    }
    registerAndSubmit(task, accesses);
  }

  /// Raw function-pointer spawn for callers that manage their own state.
  void spawn(std::initializer_list<Access> accesses, void (*fn)(void*),
             void* arg);

  /// Wait until every spawned task has completed, helping execute ready
  /// tasks meanwhile, then recycle descriptors and dependency chains.
  /// If a task body threw (or cancel() was called), the graph DRAINS —
  /// remaining ready tasks are skipped, not run — and this variant
  /// silently discards the captured error; use taskwaitChecked() to
  /// observe it.
  void taskwait();

  /// taskwait() that rethrows the FIRST exception captured from a task
  /// body after the graph drains to quiescence (descriptors reclaimed,
  /// chains reset — conservation holds before the throw reaches the
  /// caller).  Returns normally when nothing failed, including after a
  /// caller-initiated cancel().  Either way the failure state is
  /// cleared: the next batch starts clean.
  void taskwaitChecked();

  /// Poison the current graph from any thread: ready tasks dequeued
  /// from here on are skipped (dependencies still released, so the
  /// graph drains), and the next taskwait returns once in-flight
  /// bodies finish.  Idempotent; racing a task failure is fine (first
  /// poisoner wins the trace event, the error slot keeps the first
  /// captured exception).
  void cancel();

  const RuntimeConfig& config() const { return config_; }
  Scheduler& scheduler() { return *sched_; }
  DependencySystem& deps() { return *deps_; }
  Allocator& allocator() { return *alloc_; }

  /// Descriptors currently alive (allocated, not yet reclaimed).  With
  /// eager reclamation this tracks the in-flight window; after a
  /// taskwait it returns to zero.  Summed over per-CPU stripes, so a
  /// mid-flight reading is approximate (individual stripes go negative
  /// when one thread allocates what another reclaims); at quiescence it
  /// is exact.
  std::size_t liveDescriptors() const {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i <= config_.topo.numCpus; ++i)
      sum += descriptorDelta_[i].v.load(std::memory_order_relaxed);
    return sum > 0 ? static_cast<std::size_t>(sum) : 0;
  }

  /// Logical CPU slot of the calling thread: a worker's own slot, or the
  /// reserved spawner slot for any non-worker thread.
  std::size_t callerCpu() const;

  /// Lifetime failure counters (they survive taskwait/reset), for
  /// conservation audits: executed + tasksFailed() + tasksSkipped() ==
  /// spawned, across every batch this Runtime ever ran.
  std::uint64_t tasksFailed() const { return graph_.tasksFailed(); }
  std::uint64_t tasksSkipped() const { return graph_.tasksSkipped(); }

  /// Monotonic count of retired tasks (completed, failed, or skipped) —
  /// the watchdog's progress probe, public so tests can assert on it.
  std::uint64_t tasksRetired() const {
    return retired_.load(std::memory_order_relaxed);
  }

 private:
  template <typename Fn>
  void installClosure(Task* task, Fn&& fn) {
    using F = std::decay_t<Fn>;
    if constexpr (sizeof(F) <= Task::kInlineClosureBytes &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(task->closureBuf))
          F(std::forward<Fn>(fn));
      task->invoker = [](Task& t) {
        (*std::launder(reinterpret_cast<F*>(t.closureBuf)))();
      };
      task->closureDestroy = [](Task& t) {
        std::launder(reinterpret_cast<F*>(t.closureBuf))->~F();
      };
    } else {
      // Heap spill through the same §4 allocator as the descriptor —
      // closure churn is task churn.  Over-aligned captures (rare) fall
      // back to aligned operator new, which the pool cannot guarantee.
      ATS_FAILPOINT(closure_spill);
      if constexpr (alignof(F) <= Allocator::kAlignment) {
        void* mem = alloc_->allocate(sizeof(F));
        task->arg = ::new (mem) F(std::forward<Fn>(fn));
        task->closureDestroy = [](Task& t) {
          std::launder(static_cast<F*>(t.arg))->~F();
          static_cast<Runtime*>(t.runtime)->alloc_->deallocate(t.arg,
                                                              sizeof(F));
          t.arg = nullptr;
        };
      } else {
        task->arg = new F(std::forward<Fn>(fn));
        task->closureDestroy = [](Task& t) {
          delete static_cast<F*>(t.arg);
          t.arg = nullptr;
        };
      }
      task->invoker = [](Task& t) {
        (*std::launder(static_cast<F*>(t.arg)))();
      };
    }
  }

  Task* allocateTask();
  void registerAndSubmit(Task* task, std::span<const Access> accesses);
  void workerLoop(std::size_t cpu);
  /// The one place a dequeued task's body runs: skip check against the
  /// graph's cancellation token, TaskStart/End|Failed tracing, the
  /// catch frame that turns a throwing body into a poisoned graph, and
  /// the unconditional complete() that keeps conservation true on every
  /// path (run, fail, skip).
  void executeTask(Task* task, std::size_t cpu);
  void drainAndHelp();
  void complete(Task* task);
  void quiesce();
  std::string watchdogReport() const;

  static void completeThunk(Task& task);
  static void reclaimThunk(DepTask& task);
  static void readyThunk(void* ctx, DepTask* task, std::size_t cpu);

  /// Per-CPU-slot allocated-minus-reclaimed delta.  Each slot has a
  /// single writing thread (workers their own, every non-worker the
  /// spawner slot), so the hot path is a plain store — no shared-line
  /// RMW per task like a single counter would cost.
  struct alignas(64) DescriptorDelta {
    std::atomic<std::int64_t> v{0};
  };

  void bumpDescriptorDelta(std::int64_t by) {
    std::atomic<std::int64_t>& slot = descriptorDelta_[callerCpu()].v;
    slot.store(slot.load(std::memory_order_relaxed) + by,
               std::memory_order_relaxed);
  }

  RuntimeConfig config_;
  std::size_t spawnerCpu_;
  Allocator* alloc_;
  std::unique_ptr<DependencySystem> deps_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<DescriptorDelta[]> descriptorDelta_;

  std::atomic<std::size_t> inFlight_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;

  GraphStatus graph_;
  std::atomic<std::uint64_t> retired_{0};
  std::thread::id spawnerThread_;
  std::unique_ptr<Watchdog> watchdog_;  // destroyed first: see ~Runtime
};

}  // namespace ats
