#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace ats {

/// Stall detector: one monitor thread that watches a monotonic
/// completion counter and fires when work is in flight but the counter
/// has not moved for `timeout` — turning a silent hang (lost wake-up,
/// deadlocked chain, livelocked scheduler) into an actionable report
/// instead of a CI job that times out with no evidence.
///
/// Progress model: the runtime's completion counter bumps on EVERY
/// task retirement, including skips, so a cancelling graph draining
/// thousands of tasks is visibly making progress.  False-positive
/// bound: a single task body legitimately running longer than
/// `timeout` with nothing else retiring IS reported — the timeout is
/// the operator's statement that no healthy task takes that long
/// (DESIGN.md "Failure domains" quantifies the polling slack: a stall
/// is reported between `timeout` and `timeout + poll interval` after
/// the last retirement, poll interval = timeout/4 clamped to
/// [10ms, 1s]).
///
/// The default onStall prints the report and calls ats::fatal — which
/// flushes the attached tracer's rings to ATS_TRACE_DIR, so the last
/// thing the record shows is per-worker activity right up to the hang.
/// Tests (and embedders that prefer to limp on) install their own
/// onStall; after firing, the watchdog re-arms only when progress
/// resumes, so a persistent stall fires once, not once per poll.
class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds timeout{1000};
    std::function<std::uint64_t()> progress;  ///< monotonic retirements
    std::function<bool()> busy;               ///< true while work in flight
    std::function<std::string()> report;      ///< state dump for the message
    /// Called with the report on stall detection; nullptr = print +
    /// ats::fatal (the production behavior).
    std::function<void(const std::string&)> onStall;
  };

  explicit Watchdog(Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stalls detected so far (only observable with a non-fatal onStall).
  std::uint64_t stallsDetected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Options options_;
  std::atomic<std::uint64_t> stalls_{0};
  std::mutex lock_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace ats
