#pragma once

#include <cstddef>

#include "common/topology.hpp"
#include "deps/dependency_system.hpp"  // DepsKind lives in the deps layer
#include "sched/policy_kind.hpp"       // PolicyKind (enum only, no policies)

namespace ats {

class Tracer;  // instr layer; runtime_config stays header-light

/// Which scheduler design the runtime instantiates (fig_common's curves).
enum class SchedulerKind {
  CentralMutex,    ///< one OS mutex (serial-insertion / GOMP-like base)
  PTLockCentral,   ///< PTLock-protected central queue ("w/o DTLock")
  SyncDelegation,  ///< SPSC add-buffers + DTLock delegation (the paper's)
  WorkStealing,    ///< per-CPU Chase–Lev deques + stealing (LLVM-family)
};

/// Stable short name per kind, matching each scheduler's `name()` (the
/// policyKindName companion; bench labels and error messages use it).
constexpr const char* schedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::CentralMutex: return "central_mutex";
    case SchedulerKind::PTLockCentral: return "ptlock_central";
    case SchedulerKind::SyncDelegation: return "sync_dtlock";
    case SchedulerKind::WorkStealing: return "work_steal";
  }
  return "unknown";
}

/// Everything a Runtime needs to construct itself.  The fig benches build
/// these through the factory functions below, one per curve.
struct RuntimeConfig {
  Topology topo;
  SchedulerKind scheduler = SchedulerKind::SyncDelegation;
  DepsKind deps = DepsKind::WaitFreeAsm;

  /// Thread-caching pool allocator for task descriptors (§4's jemalloc
  /// role); false = plain system malloc.
  bool usePoolAllocator = true;

  /// Ready-queue policy behind the serialized schedulers (§3.2's
  /// extensibility, micro_ablation's BM_Policy sweep).
  PolicyKind policy = PolicyKind::Fifo;

  /// Flat-combining batched delegation serve (§8) — the optimized
  /// configuration and the default; false selects the Listing-5
  /// serve-one baseline (micro_ablation's BM_ServeMode ablation).
  bool schedBatchServe = true;

  /// Most delegated waiters answered per combining batch (clamped to
  /// SyncScheduler::kMaxServeBurst).
  std::size_t serveBurst = 16;

  /// SyncDelegation batched serve groups popped waiters by NUMA domain
  /// and pulls each group's tasks with the group's own locality view,
  /// draining the waiters'-domain add-buffer shards first; false
  /// restores holder-locality pulls + flat drains (micro_numa's
  /// ablation baseline).  No effect on serve-one or other schedulers.
  bool schedWaiterLocality = true;

  /// Slots in each per-CPU SPSC add-buffer (SyncDelegation and
  /// PTLockCentral), and the initial per-CPU deque capacity under
  /// WorkStealing (same "per-CPU buffer" knob; the deque grows past it).
  /// Reconciled name — older code and docs said `addBufferCapacity`.
  std::size_t spscCapacity = 256;

  /// WorkStealing only: most REMOTE-NUMA-domain victims one empty poll
  /// probes (the local domain is always probed in full).  Threaded the
  /// same way serveBurst is for SyncDelegation.  Default mirrors
  /// WorkStealingSchedulerOptions::kDefaultStealProbeLimit (this header
  /// stays light, so the constant is not included here).
  std::size_t stealProbeLimit = 64;

  /// Stall watchdog (failure domains): 0 disables; a positive value
  /// starts one monitor thread per Runtime that fires when tasks are in
  /// flight but no task has retired for this many milliseconds — dumping
  /// runtime state (and, through the fatal hook, the attached tracer's
  /// rings) to stderr before aborting.  Set it to a bound no healthy
  /// task should ever exceed; the false-positive analysis lives in
  /// DESIGN.md "Failure domains".
  std::size_t watchdogTimeoutMs = 0;

  /// Test/embedder hook: when non-null the watchdog calls this with the
  /// state report instead of aborting, then keeps monitoring (re-arming
  /// once progress resumes).  Plain function pointer + ctx to keep this
  /// header <functional>-free.
  void (*watchdogOnStall)(void* ctx, const char* report) = nullptr;
  void* watchdogOnStallCtx = nullptr;

  /// Instrumentation backend (§5): the per-CPU ring tracer the runtime
  /// and scheduler emit into, or nullptr (the default) for the untraced
  /// fast path — every emission site is null-guarded, so this field
  /// being null costs one predictable branch per site.  Not owned; the
  /// tracer must outlive the Runtime (declare it first) and carry
  /// EXACTLY `topo.numCpus` CPU streams — its constructor adds the
  /// spawner and kernel streams on top, and the Runtime aborts loudly
  /// on a mismatch (misrouted streams would otherwise corrupt the
  /// single-writer rings silently).  micro_instr and fig10/fig11 set it.
  Tracer* tracer = nullptr;
};

/// Fully optimized runtime — every paper technique on ("nanos6" curve).
RuntimeConfig optimizedConfig(const Topology& topo);

/// Ablations of Figures 4-6: one technique off at a time.
RuntimeConfig withoutJemallocConfig(const Topology& topo);
RuntimeConfig withoutWaitFreeDepsConfig(const Topology& topo);
RuntimeConfig withoutDTLockConfig(const Topology& topo);

/// Architectural stand-ins of Figures 7-9.
RuntimeConfig centralMutexRuntimeConfig(const Topology& topo);
RuntimeConfig workStealingRuntimeConfig(const Topology& topo);

/// Per-machine presets of the paper's evaluation (§6.1), fully
/// optimized.  All three share the same defaults — scheduler, deps and
/// allocator choice never vary by machine, only the topology does.
/// `numCpus == 0` keeps the preset's native core count (the
/// makeTopology convention).
RuntimeConfig makeXeonConfig(std::size_t numCpus = 0);
RuntimeConfig makeRomeConfig(std::size_t numCpus = 0);
RuntimeConfig makeGravitonConfig(std::size_t numCpus = 0);

}  // namespace ats
