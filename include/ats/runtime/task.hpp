#pragma once

#include <cstdint>

namespace ats {

/// Minimal task descriptor the scheduler layer traffics in.  The
/// dependency subsystem (wait-free ASM, later PR) and the body/closure
/// representation will grow here; the schedulers only ever move `Task*`
/// around, so they are insulated from that growth.
struct Task {
  /// Body entry point; null for the placeholder tasks benches enqueue.
  void (*body)(void* arg) = nullptr;
  void* arg = nullptr;

  /// NUMA domain hint for affinity-aware policies (0 = don't care).
  std::uint32_t numaHint = 0;

  /// Higher runs earlier under priority-aware policies.
  std::uint32_t priority = 0;

  void run() {
    if (body != nullptr) body(arg);
  }
};

}  // namespace ats
