#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "deps/dep_task.hpp"

namespace ats {

/// Task descriptor.  The schedulers only ever move `Task*` around; the
/// dependency subsystem sees the DepTask base; the runtime owns the
/// closure and completion machinery on top.
///
/// A task body is either a raw function pointer (`body`/`arg` — what the
/// scheduler benches use) or a type-erased closure installed by
/// `Runtime::spawn` into `closureBuf` (or the heap when it does not fit),
/// invoked through `invoker`.
struct Task : DepTask {
  /// Raw body entry point (used when no closure is installed).
  void (*body)(void* arg) = nullptr;
  void* arg = nullptr;

  /// NUMA domain hint for affinity-aware policies (0 = don't care).
  std::uint32_t numaHint = 0;

  /// Higher runs earlier under priority-aware policies.
  std::uint32_t priority = 0;

  /// Inline closure storage; capture sets larger than this spill to the
  /// heap (Runtime::installClosure decides and sets the destroyer).
  static constexpr std::size_t kInlineClosureBytes = 48;
  alignas(alignof(std::max_align_t)) unsigned char
      closureBuf[kInlineClosureBytes];
  void (*invoker)(Task& task) = nullptr;
  void (*closureDestroy)(Task& task) = nullptr;

  /// Completion hook installed by the owning Runtime at spawn.
  void (*onComplete)(Task& task) = nullptr;
  void* runtime = nullptr;

  /// Execute the task to completion:
  ///
  ///   1. run the body exactly once (closure if installed, else the raw
  ///      function pointer);
  ///   2. run the completion hook, which destroys the closure, releases
  ///      the task's dependency accesses — readying successors into the
  ///      scheduler — and drops the execution reference.  The descriptor
  ///      is reclaimed EAGERLY the moment its refcount drains (see
  ///      DepTask::refCount): release-path code must never touch another
  ///      task's access nodes after resolving it.
  ///
  /// A task with neither closure nor raw body is a misconfigured bench or
  /// runtime bug; that used to no-op silently, now it fails loudly.
  void run() {
    if (invoker != nullptr) {
      invoker(*this);
    } else if (body != nullptr) {
      body(arg);
    } else {
      std::fprintf(stderr,
                   "ats::Task::run(): task %p has neither a closure nor a "
                   "raw body — misconfigured bench or spawn path\n",
                   static_cast<void*>(this));
      std::abort();
    }
    if (onComplete != nullptr) onComplete(*this);
  }
};

}  // namespace ats
