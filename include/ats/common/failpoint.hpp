#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ats {

/// What an armed failpoint does when its probability/count gate fires.
enum class FailpointMode : std::uint8_t {
  Off,      ///< not armed; the site costs one relaxed load
  Throw,    ///< throw FailpointError (exception-containment drills)
  DelayUs,  ///< sleep `delayUs` microseconds (latency/stall injection)
  Abort,    ///< ats::fatal (crash-consistency drills; dumps the tracer)
};

/// The exception Throw-mode failpoints raise.  Carries the failpoint's
/// registry id so the runtime's catch frame can stamp it into the
/// TaskFailed trace payload — a trace reader can then tell WHICH
/// chokepoint was injected without string matching.
class FailpointError : public std::runtime_error {
 public:
  FailpointError(const std::string& name, std::uint32_t id)
      : std::runtime_error("ats::failpoint fired: " + name), id_(id) {}

  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// One named fault-injection chokepoint.  Sites reference a Failpoint
/// through the ATS_FAILPOINT macro below; arming happens out-of-band
/// (env or FailpointRegistry API), so the site itself never takes a
/// lock: the unarmed check is a single relaxed load of `armed_`.
///
/// Node addresses are stable for the process lifetime (the registry
/// never erases), which is what lets every site cache a reference in a
/// function-local static.
class Failpoint {
 public:
  Failpoint(std::string name, std::uint32_t id)
      : name_(std::move(name)), id_(id) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }
  std::uint32_t id() const { return id_; }

  /// The site-side unarmed check: one relaxed load, no fence, no RMW.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Slow path, reached only while armed: roll the probability gate,
  /// spend one shot of the count budget, and perform the mode action.
  /// May throw FailpointError (Throw mode) or not return (Abort mode).
  void evaluate();

  /// Arm with `prob` in [0,1] per evaluation and `count` total fires
  /// (0 = unlimited).  `delayUs` only matters for DelayUs mode.
  void arm(FailpointMode mode, double prob, std::uint64_t count,
           std::uint64_t delayUs = 0);
  void disarm();

  FailpointMode mode() const {
    return static_cast<FailpointMode>(mode_.load(std::memory_order_relaxed));
  }

  /// Times an armed site reached evaluate() / times the action actually
  /// ran.  Unarmed sites count nothing — the fast path stays one load.
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }
  void resetCounters() {
    evaluations_.store(0, std::memory_order_relaxed);
    fires_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::uint32_t id_;

  std::atomic<bool> armed_{false};
  std::atomic<std::uint8_t> mode_{
      static_cast<std::uint8_t>(FailpointMode::Off)};
  /// Fire when the thread-local RNG's upper 32 bits fall below this.
  std::atomic<std::uint32_t> probThreshold_{0};
  /// Remaining fires; < 0 means unlimited.
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<std::uint64_t> delayUs_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> fires_{0};
};

/// Process-wide registry of failpoints, keyed by name.  First use parses
/// `ATS_FAILPOINTS` — a comma-separated list of specs:
///
///   name:prob:count[:mode[:delay_us]]
///
/// where `prob` is the per-evaluation fire probability in [0,1], `count`
/// caps total fires (0 = unlimited), and `mode` is one of `throw`
/// (default), `abort`, `delay-us` (with `delay_us` microseconds, default
/// 100).  Example — the CI smoke's 1% task-invoke throw:
///
///   ATS_FAILPOINTS=task_invoke:0.01:0
///
/// Arming a name the binary never reaches is fine (the node just sits
/// idle); site() and arm() converge on the same node by name.
class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// Find-or-create the node for `name`.  Called once per site through
  /// the macro's static; also the programmatic arm/inspect entry.
  Failpoint& site(const char* name);

  /// Parse and apply one `name:prob:count[:mode[:delay_us]]` spec.
  /// Returns false (arming nothing) on malformed input.
  bool armFromSpec(const std::string& spec);

  bool arm(const char* name, FailpointMode mode, double prob,
           std::uint64_t count, std::uint64_t delayUs = 0);
  void disarm(const char* name);
  void disarmAll();

  /// Stable snapshot of every registered node (for tests/diagnostics).
  std::vector<Failpoint*> all();

 private:
  FailpointRegistry();

  struct Impl;
  Impl* impl_;  ///< leaked intentionally: sites outlive static dtors
};

}  // namespace ats

/// Plant a fault-injection chokepoint.  Compiles to a function-local
/// static bind (guard load after first pass) plus one relaxed load while
/// unarmed; the evaluate() slow path is only reachable once armed via
/// ATS_FAILPOINTS or FailpointRegistry.  `name` is a bare identifier —
/// it is stringized for the registry key.
#define ATS_FAILPOINT(name)                                      \
  do {                                                           \
    static ::ats::Failpoint& ats_failpoint_site_ =               \
        ::ats::FailpointRegistry::instance().site(#name);        \
    if (ats_failpoint_site_.armed()) [[unlikely]]                \
      ats_failpoint_site_.evaluate();                            \
  } while (0)
