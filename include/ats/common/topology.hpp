#pragma once

#include <cstddef>

namespace ats {

/// The machines of the paper's evaluation (§6.1) plus the host we happen
/// to run on.  Presets fix the CPU/NUMA shape so figure output is
/// comparable across hosts; `Host` adapts to the current machine.
enum class MachinePreset {
  Host,      ///< whatever std::thread::hardware_concurrency reports
  Xeon,      ///< 2x Intel Xeon Platinum 8160 (24c each), 2 NUMA domains
  Rome,      ///< 2x AMD EPYC 7742 (64c each), 8 NUMA domains (NPS4)
  Graviton,  ///< AWS Graviton2, 64 cores, single NUMA domain
};

/// CPU/NUMA shape the runtime layers size themselves from: one SPSC
/// add-buffer per CPU, one ready-queue shard per NUMA domain, etc.
struct Topology {
  std::size_t numCpus = 1;
  std::size_t numNumaDomains = 1;
  std::size_t cacheLineBytes = 64;
  MachinePreset preset = MachinePreset::Host;

  /// Extra per-thread scheduler slots beyond the real CPUs — the
  /// Runtime reserves one for the spawner.  Kept OUT of numCpus so the
  /// NUMA domain math below stays anchored to the physical layout: a
  /// reserved slot is not a core, and folding it into numCpus would
  /// shift cpusPerDomain and misclassify real workers (slot indices
  /// fold into a domain via the `cpu % numCpus` below instead).
  std::size_t reservedSlots = 0;

  /// Per-thread structure count schedulers size from (SPSC buffers,
  /// DTLock result slots): every worker plus every reserved slot.
  std::size_t slotCount() const { return numCpus + reservedSlots; }

  /// Domain owning scheduler slot `slot` — the ONE place the
  /// slot→domain rule lives (NumaFifoPolicy, the work-stealing victim
  /// split, and the sharded AddBufferSet all route through it).  The
  /// block-cyclic layout every preset machine uses: consecutive CPUs
  /// fill a domain before the next.  Reserved slots (the Runtime's
  /// spawner) fold onto a real CPU's domain via the modulo, and
  /// degenerate hand-built shapes (zero CPUs or domains) collapse to
  /// domain 0 instead of dividing by zero.
  std::size_t domainOfSlot(std::size_t slot) const {
    if (numCpus < 1 || numNumaDomains <= 1) return 0;
    const std::size_t domain = (slot % numCpus) / cpusPerDomain();
    return domain < numNumaDomains ? domain : numNumaDomains - 1;
  }

  /// Domain owning `cpu` — the physical-CPU reading of the same map.
  /// Exact alias of domainOfSlot so the two cannot drift.
  std::size_t numaDomainOf(std::size_t cpu) const { return domainOfSlot(cpu); }

  /// CPUs per NUMA domain, rounded up so every CPU maps somewhere.
  std::size_t cpusPerDomain() const {
    return (numCpus + numNumaDomains - 1) / numNumaDomains;
  }
};

/// Build a topology for `preset`.  `numCpus == 0` keeps the preset's
/// native core count; any other value overrides it (the ATS_THREADS
/// knob), shrinking the domain count when fewer CPUs than domains remain.
Topology makeTopology(MachinePreset preset, std::size_t numCpus = 0);

/// Lower-case preset tag used in figure headers ("host", "xeon", ...).
const char* presetName(MachinePreset preset);

}  // namespace ats
