#pragma once

#include <cstddef>
#include <string>

namespace ats {

/// True when `name` is set to anything but "", "0", "false", "off", "no".
/// The ATS_FULL / ATS_TRACE-style switches documented in EXPERIMENTS.md
/// all go through this helper.
bool envFlag(const char* name);

/// Unsigned size from the environment, or `fallback` when unset/garbage.
std::size_t envSize(const char* name, std::size_t fallback);

/// String from the environment, or `fallback` when unset.
std::string envString(const char* name, const std::string& fallback);

}  // namespace ats
