#pragma once

#include <source_location>

namespace ats {

/// Last-gasp evidence hook, run by fatal() between printing the message
/// and aborting.  The runtime installs one that binary-dumps its
/// attached §5 tracer to ATS_TRACE_DIR (the common layer cannot name
/// the instr layer, so the dependency points upward through this
/// callback).  Install with ctx; installing nullptr uninstalls.
/// Single-slot: the most recent install wins — one Runtime at a time
/// owns the crash evidence, matching the one-shot lifecycle.
using FatalHook = void (*)(void* ctx);
void installFatalHook(FatalHook hook, void* ctx);

namespace detail {
[[noreturn]] void fatalImpl(const char* file, unsigned line,
                            const char* fmt, ...);
}  // namespace detail

/// Capture the CALL SITE's file:line without a macro: the format string
/// converts implicitly and brings its source_location along.
struct FatalFmt {
  const char* fmt;
  std::source_location loc;
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  FatalFmt(const char* f,
           std::source_location l = std::source_location::current())
      : fmt(f), loc(l) {}
};

/// Print `file:line: message` to stderr, run the fatal hook (tracer
/// flush/binary dump — see installFatalHook), then abort.  The one way
/// the runtime dies on purpose: every site that used to call a bare
/// std::abort() loses its in-flight trace evidence; this path saves it.
/// printf-style; arguments must be C-vararg-passable (the callers all
/// format counts and names).
template <typename... Args>
[[noreturn]] void fatal(FatalFmt fmt, Args... args) {
  detail::fatalImpl(fmt.loc.file_name(), fmt.loc.line(), fmt.fmt, args...);
}

}  // namespace ats
