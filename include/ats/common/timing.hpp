#pragma once

#include <chrono>
#include <cstdint>

namespace ats {

/// Nanoseconds on the monotonic clock.  All latency/throughput numbers in
/// the repo are derived from this single source so figures are comparable.
inline std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Polite busy-wait hint: tells the core we are spinning so SMT siblings
/// (and, on x86, the memory-order machinery) can deprioritize us.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Wall-clock stopwatch for coarse phase timing (figure sweeps, app runs).
class Stopwatch {
 public:
  Stopwatch() : start_(nowNanos()) {}

  void restart() { start_ = nowNanos(); }

  std::uint64_t elapsedNanos() const { return nowNanos() - start_; }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace ats
