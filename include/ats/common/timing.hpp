#pragma once

#include <chrono>
#include <cstdint>

namespace ats {

/// Nanoseconds on the monotonic clock.  All latency/throughput numbers in
/// the repo are derived from this single source so figures are comparable.
inline std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw cycle/tick counter for trace timestamps (§5): one unserialized
/// register read, no syscall, no vDSO branch — the cheapest "when" a
/// hot path can record.  Ticks are NOT nanoseconds and the rate varies
/// by machine; consumers must rescale against a (tsc, nowNanos) pair
/// sampled at two points (see Tracer::collect).  On x86 the TSC is
/// invariant and core-synchronized on every machine the paper targets;
/// on aarch64 cntvct_el0 is architecturally synchronized.  Hosts with
/// neither fall back to nowNanos(), trading emit cost for portability.
inline std::uint64_t tscNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
#else
  return nowNanos();
#endif
}

/// Polite busy-wait hint: tells the core we are spinning so SMT siblings
/// (and, on x86, the memory-order machinery) can deprioritize us.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Wall-clock stopwatch for coarse phase timing (figure sweeps, app runs).
class Stopwatch {
 public:
  Stopwatch() : start_(nowNanos()) {}

  void restart() { start_ = nowNanos(); }

  std::uint64_t elapsedNanos() const { return nowNanos() - start_; }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace ats
