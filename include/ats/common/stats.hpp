#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace ats {

/// Single-pass mean/variance accumulator (Welford).  Used by the figure
/// harnesses to aggregate repetitions without storing every sample.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ats
