#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "instr/tracer.hpp"

namespace ats {

/// Synthetic OS noise for the fig11 scenario: a thread pinned to
/// `targetCpu` that burns the CPU for `burstUs` every `periodUs`,
/// logging KernelIrqEnter/Exit around each burst into the tracer's
/// kernel stream.  Under the kernel's normal preemption the burst
/// displaces whatever worker runs on that core — the same displacement
/// a real interrupt storm causes — while the runtime under test stays
/// completely unmodified.  DESIGN.md explains why this userspace
/// burst-burner preserves the measurement where an in-runtime "pretend
/// we were interrupted" hook would not.
///
/// Injection starts at construction and runs until stop() (or the
/// destructor).  Single injector per tracer: the kernel stream is
/// single-writer like every other stream.
class KernelNoiseInjector {
 public:
  KernelNoiseInjector(Tracer& tracer, std::uint64_t periodUs,
                      std::uint64_t burstUs, std::size_t targetCpu);
  ~KernelNoiseInjector();

  KernelNoiseInjector(const KernelNoiseInjector&) = delete;
  KernelNoiseInjector& operator=(const KernelNoiseInjector&) = delete;

  /// Finish the current burst (if any) and join the injector thread.
  /// Idempotent.
  void stop();

  std::uint64_t burstsInjected() const {
    return bursts_.load(std::memory_order_acquire);
  }

 private:
  void run();

  Tracer& tracer_;
  const std::uint64_t periodUs_;
  const std::uint64_t burstUs_;
  const std::size_t targetCpu_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> bursts_{0};
  std::thread thread_;
};

}  // namespace ats
