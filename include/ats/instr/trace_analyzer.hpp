#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "instr/trace_event.hpp"

namespace ats {

/// Per-worker numbers derived from one thread's stream.
struct ThreadTraceStats {
  std::uint64_t tasksExecuted = 0;
  std::uint64_t steals = 0;  ///< SchedSteal events this thread emitted
  double busyUs = 0;  ///< inside TaskStart..TaskEnd
  double idleUs = 0;  ///< inside WorkerIdleBegin..WorkerIdleEnd
  double idlePct = 0;  ///< idleUs / trace span (starvation %)
};

/// What fig10/fig11 quote from a trace: how starved the workers were,
/// how much delegation/drain traffic the scheduler saw, and how serve
/// activity correlates with kernel noise.
struct TraceAnalysis {
  std::vector<ThreadTraceStats> threads;
  double spanUs = 0;          ///< first..last record timestamp
  std::uint64_t recordCount = 0;
  double meanIdlePct = 0;     ///< mean starvation over worker streams

  std::uint64_t serveCount = 0;    ///< SchedServe events (serve bursts)
  std::uint64_t servedTasks = 0;   ///< total hand-offs (local + remote)
  /// The v3 SchedServe payload split (trace_event.hpp): hand-offs pulled
  /// with the waiter's own-domain view vs hand-offs that crossed
  /// domains.  crossServeRatio = servedTasksRemote / servedTasks — the
  /// NUMA cousin of stealRatio below.
  std::uint64_t servedTasksLocal = 0;
  std::uint64_t servedTasksRemote = 0;
  double crossServeRatio = 0;
  std::uint64_t drainCount = 0;    ///< SchedDrain events
  std::uint64_t drainedTasks = 0;  ///< sum of SchedDrain payloads
  std::uint64_t contendedCount = 0;  ///< SchedLockContended events

  /// Work-stealing traffic: SchedSteal events across ALL streams (the
  /// spawner steals too) and the TaskStart count they are a fraction
  /// of.  stealRatio = stealCount / taskStartCount — how much of the
  /// executed work arrived by theft rather than a local pop.
  std::uint64_t stealCount = 0;
  std::uint64_t taskStartCount = 0;  ///< TaskStart events, all streams
  double stealRatio = 0;

  /// Failure-domain counters (trace format v4).  taskFailedCount are
  /// bodies that threw (their busy interval is closed by TaskFailed,
  /// not TaskEnd); taskSkippedCount are ready tasks drained unrun after
  /// the graph poisoned; graphCancelledCount counts poisonings (>1 when
  /// one Runtime ran several batches through one tracer).  Conservation
  /// under failure reads as: starts == ends + fails, and starts + skips
  /// == spawns.
  std::uint64_t taskFailedCount = 0;
  std::uint64_t taskSkippedCount = 0;
  std::uint64_t graphCancelledCount = 0;

  /// Longest gap between consecutive SchedServe events — the fig11
  /// signal: a displaced lock holder shows up as one huge serve gap.
  double maxServeGapUs = 0;
  /// Longest serve gap that overlaps a KernelIrqEnter..Exit interval.
  double maxServeGapDuringIrqUs = 0;
  std::uint64_t irqCount = 0;
  double irqTotalUs = 0;
};

/// Derive the analysis from a merged record vector (Tracer::collect or
/// TraceWriter::readBinary output; re-sorted internally so hand-built
/// sequences work too).  `numThreads` is the worker-stream count —
/// streams >= numThreads (spawner, kernel) contribute their scheduler
/// and irq events but not to the starvation statistics.
TraceAnalysis analyzeTrace(const std::vector<TraceRecord>& records,
                           std::size_t numThreads);

/// Multi-line human-readable rendering of an analysis.
std::string formatAnalysis(const TraceAnalysis& analysis);

/// Fixed-width ASCII timeline, one row per worker stream plus a kernel
/// row: '#' running a task, '.' idle-spinning, 'I' displaced by a
/// kernel burst, ' ' unknown.  The fig10/fig11 "figure".
std::string renderTimeline(const std::vector<TraceRecord>& records,
                           std::size_t numThreads);

}  // namespace ats
