#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/timing.hpp"
#include "instr/trace_event.hpp"

namespace ats {

/// The §5 tracing backend: one fixed-capacity single-writer ring per
/// stream, written with plain stores so `emit` is wait-free and cheap
/// enough to leave the optimized runtime unperturbed.
///
///   Tracer tracer(numCpus, 1u << 18);
///   cfg.tracer = &tracer;                  // runtime + scheduler emit
///   ...run...
///   auto records = tracer.collect();       // merged, timestamp-ordered
///
/// Streams: `numCpuStreams` worker streams (index == the runtime's CPU
/// slot), plus two auxiliary ones the constructor always provisions —
/// `spawnerStream()` (== numCpuStreams, matching the runtime's reserved
/// spawner slot) and `kernelStream()` for KernelIrq* events from the
/// noise injector or a real kernel-event bridge.  Each stream has
/// exactly one writing thread; that single-writer discipline is what
/// lets `emit` publish with one release store and no RMW.
///
/// Full-ring semantics: the ring keeps the OLDEST `capacityPerStream`
/// records and drops the rest, bumping a per-stream saturating counter
/// (`dropped()`), so a saturated tracer degrades to a counter bump, not
/// to blocking or overwriting the records an analyzer already reasons
/// about.  Size rings for the window you need (DESIGN.md).
///
/// `collect()` may run concurrently with emitters (it snapshots each
/// ring's published prefix) but the returned merge is only complete for
/// streams that have quiesced; call it after the traced region.
class Tracer {
 public:
  /// `numCpuStreams` worker streams + the two aux streams.  Capacity is
  /// per stream, in records (24B each).
  Tracer(std::size_t numCpuStreams, std::size_t capacityPerStream);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t numCpuStreams() const { return numCpuStreams_; }
  std::size_t numStreams() const { return numStreams_; }
  std::size_t spawnerStream() const { return numCpuStreams_; }
  std::size_t kernelStream() const { return numCpuStreams_ + 1; }
  std::size_t capacityPerStream() const { return capacity_; }

  /// Wait-free, single writer per stream: one TSC read, one 24-byte
  /// store, one release store of the head.  A full ring (or an
  /// out-of-range stream) degrades to a saturating drop-count bump.
  void emit(std::size_t stream, TraceEvent event, std::uint64_t payload = 0) {
    if (stream >= numStreams_) {
      misdirected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Stream& s = streams_[stream];
    const std::uint32_t head = s.head.load(std::memory_order_relaxed);
    if (head >= capacity_) {
      // Saturating so a flood can never wrap the counter back to
      // "nothing dropped" — analyzers must be able to trust zero.
      const std::uint64_t drops = s.drops.load(std::memory_order_relaxed);
      if (drops != ~std::uint64_t{0})
        s.drops.store(drops + 1, std::memory_order_relaxed);
      return;
    }
    TraceRecord& r = s.records[head];
    r.timeNs = tscNow();  // raw ticks; collect() rescales to ns
    r.payload = payload;
    r.event = event;
    r.stream = static_cast<std::uint16_t>(stream);
    r.reserved = 0;
    s.head.store(head + 1, std::memory_order_release);
  }

  /// Merge every stream's published records into one timestamp-ordered
  /// vector, with `timeNs` rescaled from raw ticks to nanoseconds since
  /// this Tracer's construction.  The rescale calibrates tick rate from
  /// the (construction, collect) sample pair, so it needs no a-priori
  /// TSC frequency.  Non-destructive: records stay in their rings.
  std::vector<TraceRecord> collect() const;

  /// Records lost to full rings plus emits aimed at streams this tracer
  /// does not have, summed over streams.  Saturates; zero is exact.
  std::uint64_t dropped() const;

  /// Rewind every ring to empty, zero the drop counters, and re-anchor
  /// the ticks->ns calibration epoch — reuse for long-running hosts
  /// (benchmark loops, figure-harness repetitions) without paying ring
  /// reallocation.  The rewind itself is only atomic head/counter
  /// stores, so live emitters are tolerated, but records emitted while
  /// a reset is in flight can straddle epochs: collect() output is only
  /// meaningful when the reset happened at quiescence.
  void reset();

 private:
  static constexpr std::size_t kAuxStreams = 2;  // spawner + kernel

  /// Cache-line separated so emitters on different streams never share
  /// a head/drops line; `records` are written by the owner only.
  struct alignas(64) Stream {
    std::unique_ptr<TraceRecord[]> records;
    std::atomic<std::uint32_t> head{0};
    std::atomic<std::uint64_t> drops{0};
  };

  std::size_t numCpuStreams_;
  std::size_t numStreams_;
  std::uint32_t capacity_;
  std::unique_ptr<Stream[]> streams_;
  std::atomic<std::uint64_t> misdirected_{0};
  std::uint64_t tscEpoch_;  ///< tscNow() at construction
  std::uint64_t nsEpoch_;   ///< nowNanos() at construction
};

}  // namespace ats
