#pragma once

#include <string>
#include <vector>

#include "instr/trace_event.hpp"

namespace ats {

/// Serialization of collected traces.  The binary form is CTF-lite: a
/// fixed self-describing header followed by the raw 24-byte records in
/// native endianness — enough structure for examples/trace_inspection
/// (and external tooling) to validate and read a file, without the full
/// CTF metadata machinery.  The text form is a human-readable rendering
/// of the same records, one line per event.
///
/// By convention trace files use the `.ats` extension and land in
/// `ATS_TRACE_DIR` (see EXPERIMENTS.md); both are gitignored.
struct TraceWriter {
  static constexpr char kMagic[8] = {'A', 'T', 'S', 'T', 'R', 'C', '1', 0};
  /// v2: SchedServe payload became "tasks handed off in the burst"
  /// (was: waiter CPU).  v3: that count split into the packed
  /// local/remote hand-off pair (trace_event.hpp's packServePayload).
  /// v4: the failure-domain events (TaskFailed/TaskSkipped/
  /// GraphCancelled) — and with them a semantic change to existing
  /// records: a TaskStart may now be closed by TaskFailed instead of
  /// TaskEnd, so a v3 reader's TaskStart/End pairing (and every busy/
  /// conservation statistic built on it) silently undercounts failed
  /// runs.  The record layout is unchanged each time, but stale
  /// readers would skew analyzer sums silently, so the version gate
  /// makes old traces fail loudly instead.
  static constexpr std::uint32_t kVersion = 4;

  /// Fixed 24-byte file header preceding the record array.
  struct BinaryHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t recordBytes;  ///< sizeof(TraceRecord); rejects layout drift
    std::uint64_t recordCount;
  };
  static_assert(sizeof(BinaryHeader) == 24);

  /// Write `records` (a Tracer::collect() result) to `path`.  False on
  /// any I/O failure; the file may be partially written in that case.
  static bool writeBinary(const std::string& path,
                          const std::vector<TraceRecord>& records);

  /// Read a writeBinary file back.  False (and `out` untouched) when
  /// the file is missing, truncated, or not a version-1 ats trace.
  static bool readBinary(const std::string& path,
                         std::vector<TraceRecord>& out);

  /// One line per record: timestamp, stream, event name, payload.
  static std::string renderText(const std::vector<TraceRecord>& records);

  /// renderText to a file.  False on I/O failure.
  static bool writeText(const std::string& path,
                        const std::vector<TraceRecord>& records);
};

}  // namespace ats
