#pragma once

#include <cstddef>
#include <cstdint>

namespace ats {

/// What happened at a trace point (§5).  Each value names the layer that
/// emits it: Task*/WorkerIdle* come from the runtime's execution loops,
/// Sched* from the scheduler implementations, KernelIrq* from whatever
/// feeds the tracer's kernel stream (the KernelNoiseInjector here; a
/// perf/ftrace bridge on a real deployment).
enum class TraceEvent : std::uint16_t {
  TaskStart = 1,       ///< payload: task descriptor address
  TaskEnd = 2,         ///< payload: task descriptor address
  SchedServe = 3,      ///< lock holder answered delegated waiters; payload: packed local/remote hand-off counts (packServePayload below; serve-one mode emits per hand-off with local=1).  Format v3 — v2 stored one flat count.
  SchedDrain = 4,      ///< add-buffers drained into the policy; payload: tasks moved
  SchedLockContended = 5,  ///< an ADD found the central lock busy; payload: CPU
  WorkerIdleBegin = 6,     ///< first empty poll of an idle streak
  WorkerIdleEnd = 7,       ///< a task arrived after an idle streak
  KernelIrqEnter = 8,      ///< payload: displaced CPU
  KernelIrqExit = 9,       ///< payload: displaced CPU
  SchedSteal = 10,         ///< a thief's steal succeeded; payload: victim slot.  Emitted into the THIEF's stream (work_steal scheduler).  Trace format note: a new event value, not a payload redefinition — v2 readers that predate it render "Unknown" but parse the file fine, so no version bump.
  TaskFailed = 11,         ///< a task body threw; payload: the firing failpoint's registry id (0 = a non-injected exception).  Replaces TaskEnd for that task — the busy interval it closes is real execution time.  Format v4.
  TaskSkipped = 12,        ///< a ready task was drained without running (graph poisoned); payload: task descriptor address (the TaskStart correlation key it will never get).  Format v4.
  GraphCancelled = 13,     ///< the graph's cancellation token flipped; payload: 0 = first captured task failure, 1 = caller-initiated cancel().  Emitted once per poisoning, in the poisoning thread's stream.  Format v4.
};

constexpr const char* eventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::TaskStart: return "TaskStart";
    case TraceEvent::TaskEnd: return "TaskEnd";
    case TraceEvent::SchedServe: return "SchedServe";
    case TraceEvent::SchedDrain: return "SchedDrain";
    case TraceEvent::SchedLockContended: return "SchedLockContended";
    case TraceEvent::WorkerIdleBegin: return "WorkerIdleBegin";
    case TraceEvent::WorkerIdleEnd: return "WorkerIdleEnd";
    case TraceEvent::KernelIrqEnter: return "KernelIrqEnter";
    case TraceEvent::KernelIrqExit: return "KernelIrqExit";
    case TraceEvent::SchedSteal: return "SchedSteal";
    case TraceEvent::TaskFailed: return "TaskFailed";
    case TraceEvent::TaskSkipped: return "TaskSkipped";
    case TraceEvent::GraphCancelled: return "GraphCancelled";
  }
  return "Unknown";
}

/// SchedServe payload packing (trace format v3).  Low 32 bits: hand-offs
/// pulled with the served waiter's own-domain locality view ("local");
/// high 32 bits: hand-offs that crossed NUMA domains ("remote" — the
/// flat-refill leftovers a holder answers from its own view).  Burst
/// counts are bounded by the serve burst (≤64), so 32 bits each is
/// beyond generous.
constexpr std::uint64_t packServePayload(std::uint64_t local,
                                         std::uint64_t remote) {
  return (remote << 32) | (local & 0xffffffffu);
}
constexpr std::uint64_t serveLocalCount(std::uint64_t payload) {
  return payload & 0xffffffffu;
}
constexpr std::uint64_t serveRemoteCount(std::uint64_t payload) {
  return payload >> 32;
}

/// One trace point, 24 bytes fixed — the record size is part of the
/// binary format (TraceWriter), so this layout may only change together
/// with a format version bump.
///
/// `timeNs` dual use: inside a Tracer ring it holds the raw TSC sample
/// the emitter took (`tscNow()`, one register read); `Tracer::collect()`
/// rescales it to nanoseconds since the tracer's construction using the
/// construction/collection calibration pair.  Every consumer (writer,
/// analyzer, timeline) sees only the rescaled form.
struct TraceRecord {
  std::uint64_t timeNs;    ///< ns since trace epoch (raw TSC while in-ring)
  std::uint64_t payload;   ///< event-specific (see TraceEvent)
  TraceEvent event;
  std::uint16_t stream;    ///< emitting stream: CPU slot, spawner, or kernel
  std::uint32_t reserved;  ///< zero; keeps the record 8-byte aligned at 24B
};

static_assert(sizeof(TraceRecord) == 24,
              "TraceRecord is a serialized format; see TraceWriter");

}  // namespace ats
