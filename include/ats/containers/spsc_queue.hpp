#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

namespace ats {

/// Bounded wait-free single-producer/single-consumer ring buffer — the
/// paper's §3.1 add-queue.  Every scheduler add from CPU i goes through
/// one of these instead of the central lock, which is where the
/// "twelvefold speedup over serial insertion" comes from.
///
/// Layout follows the usual fast-SPSC recipe: producer and consumer each
/// own one cache line (`tail_`+`cachedHead_` vs `head_`+`cachedTail_`),
/// and each side caches the other's index so the common case touches no
/// shared line at all.  Capacity is rounded up to a power of two so the
/// index wrap is a mask, and indices are free-running (no modulo on the
/// counters themselves, so full/empty never ambiguate).
///
/// Concurrency contract: at most one thread calls `push` and at most one
/// thread calls `pop`/`consumeAll` at any moment.  The two sides may be
/// different threads over time (the SyncScheduler drains buffers from
/// whichever thread holds the DTLock) as long as handoffs are ordered by
/// a happens-before edge — the lock provides it.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t minCapacity)
      : capacity_(std::bit_ceil(minCapacity < 2 ? std::size_t{2}
                                                : minCapacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Wait-free; false when the ring is full (caller falls back to the
  /// overflow protocol — in the scheduler, "acquire the lock and drain").
  bool push(const T& value) { return emplace(value); }
  bool push(T&& value) { return emplace(std::move(value)); }

  /// Wait-free; false when the ring is empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cachedTail_) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
      if (head == cachedTail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Drain everything currently published, in FIFO order, with a single
  /// index update at the end — the batch the DTLock holder uses when it
  /// moves a whole add-buffer into the ready queue.  Returns the count.
  template <typename F>
  std::size_t consumeAll(F&& fn) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    cachedTail_ = tail;
    for (std::size_t i = head; i != tail; ++i) fn(std::move(slots_[i & mask_]));
    head_.store(tail, std::memory_order_release);
    return tail - head;
  }

  /// Bounded consumeAll: drain at most `maxN` published values, FIFO,
  /// still one index update at the end.  The per-domain burst drains use
  /// this to cap how much work one lock hold performs; what stays behind
  /// remains published for the next drain.  Returns the drained count.
  template <typename F>
  std::size_t consumeN(std::size_t maxN, F&& fn) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    cachedTail_ = tail;
    const std::size_t avail = tail - head;
    const std::size_t take = avail < maxN ? avail : maxN;
    const std::size_t end = head + take;
    for (std::size_t i = head; i != end; ++i) fn(std::move(slots_[i & mask_]));
    head_.store(end, std::memory_order_release);
    return take;
  }

  std::size_t capacity() const { return capacity_; }

  /// Approximate when called concurrently with the other side.  Head is
  /// read first so a pop landing between the two loads cannot push head
  /// past the observed tail (which would wrap the unsigned difference).
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  template <typename U>
  bool emplace(U&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cachedHead_ == capacity_) {
      cachedHead_ = head_.load(std::memory_order_acquire);
      if (tail - cachedHead_ == capacity_) return false;
    }
    slots_[tail & mask_] = std::forward<U>(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;

  // Consumer-owned line: index plus a local copy of the producer's tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cachedTail_ = 0;

  // Producer-owned line: index plus a local copy of the consumer's head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cachedHead_ = 0;
};

}  // namespace ats
