#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

namespace ats {

/// Bounded multi-producer/multi-consumer queue, per-cell sequence-number
/// design (Vyukov).  Lock-free for all practical purposes: each push/pop
/// is one CAS on the shared counter plus one cell handshake, and
/// producers never touch consumer state.  The runtime uses it where
/// traffic is genuinely many-to-many (e.g. the work-stealing comparison
/// runtime); the scheduler hot path prefers SpscQueue + delegation.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t minCapacity)
      : capacity_(std::bit_ceil(minCapacity < 2 ? std::size_t{2}
                                                : minCapacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// False when the queue is full at the instant of the attempt.
  bool push(const T& value) { return emplace(value); }
  bool push(T&& value) { return emplace(std::move(value)); }

  /// False when the queue is empty at the instant of the attempt.
  bool pop(T& out) {
    std::size_t pos = dequeuePos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeuePos_.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Recycle the cell for the producer one lap ahead: it expects
          // seq == its own pos, which is exactly pos + capacity.
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // cell not yet filled: empty
      } else {
        pos = dequeuePos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t capacity() const { return capacity_; }

  /// Approximate under concurrency.
  std::size_t size() const {
    const std::size_t enq = enqueuePos_.load(std::memory_order_acquire);
    const std::size_t deq = dequeuePos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  template <typename U>
  bool emplace(U&& value) {
    std::size_t pos = enqueuePos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueuePos_.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          cell.value = std::forward<U>(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // lapped: full
      } else {
        pos = enqueuePos_.load(std::memory_order_relaxed);
      }
    }
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;

  alignas(64) std::atomic<std::size_t> enqueuePos_{0};
  alignas(64) std::atomic<std::size_t> dequeuePos_{0};
};

}  // namespace ats
