#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/failpoint.hpp"

namespace ats {

// The repo-wide TSan convention (see DTLock::serveBatch and DESIGN.md):
// standalone-fence synchronization support in TSan runtimes has been
// uneven across toolchain versions, so sanitized builds compile the
// per-operation seq_cst form instead of the relaxed-plus-fence one.
#if defined(__SANITIZE_THREAD__)
#define ATS_CHASE_LEV_FENCES 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATS_CHASE_LEV_FENCES 0
#else
#define ATS_CHASE_LEV_FENCES 1
#endif
#else
#define ATS_CHASE_LEV_FENCES 1
#endif

/// Chase–Lev work-stealing deque (dynamic circular array), in the
/// C11-memory-model formulation of Lê, Pop, Cohen & Nardelli (PPoPP'13).
/// One OWNER thread calls `push`/`pop` on the bottom end (LIFO — the
/// depth-first fast path); any number of THIEF threads call `steal` on
/// the top end (FIFO — thieves take the oldest, coldest task).
///
/// Why this container and not another SpscQueue: the owner's fast path
/// must involve NO shared read-modify-write at all — `push` is one slot
/// store plus one release store of `bottom`, and `pop` is one bottom
/// store plus one fence plus one top load; the single CAS in the whole
/// protocol sits on the one-element race (owner's last `pop` vs a
/// thief's `steal`) and on the thief side, where contention is the
/// uncommon case by design.  The cached-index/cache-line-padding staging
/// proved out in SpscQueue reappears here as the padded top/bottom
/// lines.  The full memory-ordering argument lives in DESIGN.md
/// ("Chase–Lev protocol"); inline comments below mark the load-bearing
/// orderings only.
///
/// Concurrency contract: exactly one thread may call `push`/`pop` at any
/// moment (ownership may migrate between threads if the handoff is
/// ordered by a happens-before edge); `steal` is safe from any thread at
/// any time, including the owner.  Indices are signed and free-running:
/// `top` only ever grows, which is what rules ABA out of the steal CAS.
///
/// T must be trivially copyable (slots are read racily and validated by
/// the CAS afterwards; a torn non-trivial copy would be UB, a torn
/// trivially-copyable one is discarded with the failed CAS).
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "racy slot reads require trivially copyable elements");

 public:
  enum class StealResult {
    Success,  ///< out holds the stolen element
    Empty,    ///< nothing to steal at the time of the probe
    Abort,    ///< lost the top CAS to the owner or another thief — the
              ///< element went to someone else; retrying is progress-safe
              ///< (every abort means somebody else completed a removal)
  };

  /// `minCapacity` is rounded up to a power of two.  The array grows
  /// (doubles) when a push finds it full, so this is a starting size,
  /// not a bound.
  explicit ChaseLevDeque(std::size_t minCapacity = 64) {
    buffers_.push_back(std::make_unique<Buffer>(minCapacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only.  Never fails: a full array grows (the only allocation
  /// in the protocol; amortized O(1), and the common case is one relaxed
  /// slot store + one release store of bottom — no RMW, no fence on x86
  /// beyond the release store's ordinary ordering).
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(value, std::memory_order_relaxed);
    // Release: a thief acquiring a bottom value > b must see slot b's
    // content (and, transitively, the grown array pointer).
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only.  LIFO: takes the most recently pushed element.  False
  /// when the deque is empty or the last element was lost to a thief.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
#if ATS_CHASE_LEV_FENCES
    bottom_.store(b, std::memory_order_relaxed);
    // THE one fence of the owner's pop: orders the bottom store before
    // the top load (a store-load ordering neither release nor acquire
    // provides).  Without it, pop and a racing steal could both read
    // the pre-decrement/pre-increment index and take the same element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#else
    // TSan form: a seq_cst store followed by a seq_cst load is ordered
    // in the single total order S, which forbids the same store-load
    // reordering the fence forbids above.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#endif
    if (t > b) {
      // Already empty: restore bottom and report so.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: the owner races thieves for it through the same
      // CAS on top the thieves use.  Losing means a thief took it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread.  FIFO: takes the oldest element.  See StealResult for
  /// the three-way outcome; callers treat Abort as "work exists,
  /// somebody else got this one".
  StealResult steal(T& out) {
#if ATS_CHASE_LEV_FENCES
    std::int64_t t = top_.load(std::memory_order_acquire);
    // Orders the top load before the bottom load: reading them in the
    // other order could see a bottom from before an owner pop and a top
    // from after a competing steal, fabricating a non-empty deque out
    // of two stale halves.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#else
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#endif
    if (t >= b) return StealResult::Empty;
    // Acquire pairs with grow's release store of buffer_: a thief that
    // observes the new array sees its fully copied contents.  (A thief
    // still holding the OLD array is fine too — grow never writes old
    // slots, so index t's cell is intact there; see DESIGN.md.)
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    out = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return StealResult::Abort;  // owner's last-element pop or another
                                  // thief advanced top first
    }
    return StealResult::Success;
  }

  /// Approximate under concurrency (two independent loads); exact when
  /// quiescent.
  std::size_t sizeApprox() const {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool emptyApprox() const { return sizeApprox() == 0; }

  /// Current array capacity (grows over the deque's lifetime).
  std::size_t capacity() const {
    return buffer_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t minCapacity)
        : capacity(std::bit_ceil(minCapacity < 2 ? std::size_t{2}
                                                 : minCapacity)),
          mask(static_cast<std::int64_t>(capacity) - 1),
          slots(std::make_unique<std::atomic<T>[]>(capacity)) {}

    std::atomic<T>& slot(std::int64_t index) {
      return slots[static_cast<std::size_t>(index & mask)];
    }

    const std::size_t capacity;
    const std::int64_t mask;
    // Atomic slots: a thief may read a cell the owner concurrently
    // overwrites after a wrap; the stale value is discarded when the
    // thief's CAS fails, but the read itself must not be a data race.
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  /// Owner only (from push).  Doubles the array, copies the live window
  /// [t, b), publishes the new array.  The old array is retired, NOT
  /// freed: a concurrent thief may still be reading it through a stale
  /// buffer_ load, so every array lives until the deque is destroyed
  /// (total retired memory is < 2x the final array — geometric series).
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    // Failpoint: delay/abort drills only — a throw out of the owner's
    // push would lose the element mid-submission (DESIGN.md "Failure
    // domains" lists which sites tolerate throw mode).
    ATS_FAILPOINT(deque_grow);
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* fresh = buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      fresh->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    // Release so a thief acquiring this pointer sees the copied slots.
    buffer_.store(fresh, std::memory_order_release);
    return fresh;
  }

  // Thief-shared line: top is the only word thieves RMW.
  alignas(64) std::atomic<std::int64_t> top_{0};
  // Owner's line: bottom is stored on every push/pop; keeping it off
  // top_'s line means an owner-local operation never contends with a
  // thief's CAS for the same cache line.
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  // Rarely-written line: the array pointer (changes only on grow) and
  // the owner-only retire list.
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  ///< owner/dtor only
};

#undef ATS_CHASE_LEV_FENCES

}  // namespace ats
