#pragma once

#include <memory>

#include "common/topology.hpp"
#include "locks/locks.hpp"
#include "sched/add_buffer_set.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// The paper's "w/o DTLock" ablation point: structurally the same
/// scheduler as SyncScheduler — per-CPU SPSC add-buffers in front of one
/// policy — but the serializing lock is a plain PTLock with no
/// delegation.  A getter that finds the lock busy walks away empty
/// instead of handing its request to the holder; that difference is
/// exactly what the dtlock-vs-ptlock comparison isolates (the paper's
/// 4x), while serial_mutex-vs-ptlock isolates the add-buffers (the 12x).
class PTLockScheduler final : public Scheduler {
 public:
  /// Traced variant emits SchedDrain per non-empty drain and
  /// SchedLockContended once per overflow episode that finds the lock
  /// busy — the "creator core fights for the lock" signal of fig10.
  PTLockScheduler(Topology topo, std::unique_ptr<SchedulerPolicy> policy,
                  std::size_t spscCapacity = 256,
                  Tracer* tracer = nullptr);

  void addReadyTask(Task* task, std::size_t cpu) override;
  Task* getReadyTask(std::size_t cpu) override;

  const char* name() const override { return "ptlock_central"; }

 private:
  Topology topo_;
  PTLock lock_;
  std::unique_ptr<SchedulerPolicy> policy_;
  AddBufferSet addBuffers_;
};

}  // namespace ats
