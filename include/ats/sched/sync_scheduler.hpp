#pragma once

#include <memory>

#include "common/topology.hpp"
#include "locks/locks.hpp"
#include "sched/add_buffer_set.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// The paper's scheduler (§3): per-CPU wait-free SPSC add-buffers in
/// front of a single policy object, everything serialized by a DTLock.
///
///   * addReadyTask: push into the caller CPU's own SPSC buffer — no
///     shared-lock traffic at all on the common path.  When the buffer is
///     full, the caller takes the DTLock itself, drains every buffer into
///     the policy, and serves any queued delegation requests while it is
///     there (the overflow "help-drain" protocol).
///   * getReadyTask: `lockOrDelegate`.  Usually some other thread already
///     holds the lock and simply hands a task back; the waiter never owns
///     the lock, never drains, never touches the policy's cache lines.
///     Whichever thread does hold the lock drains the add-buffers, takes
///     its own task, and serves the delegation queue before releasing.
class SyncScheduler final : public Scheduler {
 public:
  /// Traced variant emits SchedDrain per non-empty add-buffer drain and
  /// SchedServe per task handed to a delegated waiter.
  SyncScheduler(Topology topo, std::unique_ptr<SchedulerPolicy> policy,
                std::size_t addBufferCapacity = kDefaultAddBufferCapacity,
                Tracer* tracer = nullptr);

  void addReadyTask(Task* task, std::size_t cpu) override;
  Task* getReadyTask(std::size_t cpu) override;

  const char* name() const override { return "sync_dtlock"; }

  /// §3.1: "can be configured from a single one to one per core".  The
  /// paper's Listing 5 hardcodes 100; we default to the next power of two
  /// up.  micro_ablation sweeps this.
  static constexpr std::size_t kDefaultAddBufferCapacity = 256;

 private:
  /// Answer queued getReadyTask delegations.  Caller must hold lock_;
  /// `cpu` is the holder's slot (trace emissions go into its stream).
  void serveWaiters(std::size_t cpu);

  Topology topo_;
  DTLock lock_;
  std::unique_ptr<SchedulerPolicy> policy_;
  AddBufferSet addBuffers_;
};

}  // namespace ats
