#pragma once

#include <memory>

#include "common/topology.hpp"
#include "locks/locks.hpp"
#include "sched/add_buffer_set.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// SyncScheduler's construction-time knobs; mirrored by RuntimeConfig
/// and swept by micro_ablation.  (Namespace-scope rather than nested:
/// a nested aggregate's member initializers cannot feed a default
/// argument of the enclosing class under GCC.)
struct SyncSchedulerOptions {
  /// §3.1: "can be configured from a single one to one per core".  The
  /// paper's Listing 5 hardcodes 100; we default to the next power of
  /// two up.  micro_ablation sweeps this.
  static constexpr std::size_t kDefaultSpscCapacity = 256;
  /// Most waiters a single combining batch answers.  Also the burst's
  /// policy-pull bound, and the stack-array size the serve loop uses —
  /// more waiters than this simply take another batch within the same
  /// lock hold.
  static constexpr std::size_t kDefaultServeBurst = 16;
  static constexpr std::size_t kMaxServeBurst = 64;

  std::size_t spscCapacity = kDefaultSpscCapacity;
  bool batchServe = true;  ///< false = serve-one ablation baseline
  std::size_t serveBurst = kDefaultServeBurst;  ///< clamped to kMaxServeBurst
  /// Batched serve groups the popped waiters by NUMA domain and pulls
  /// each group's tasks with the GROUP's own locality view, preferring
  /// the waiters'-domain add-buffer shards when refilling; false
  /// restores the PR-5 holder-locality pull and flat drains —
  /// micro_numa's ablation baseline.  Serve-one mode ignores it (that
  /// path always pulls per-waiter).
  bool waiterLocality = true;
};

/// The paper's scheduler (§3): per-CPU wait-free SPSC add-buffers in
/// front of a single policy object, everything serialized by a DTLock.
///
///   * addReadyTask: push into the caller CPU's own SPSC buffer — no
///     shared-lock traffic at all on the common path.  When the buffer is
///     full, the caller takes the DTLock itself, drains every buffer into
///     the policy, and serves any queued delegation requests while it is
///     there (the overflow "help-drain" protocol).
///   * getReadyTask: `lockOrDelegate`.  Usually some other thread already
///     holds the lock and simply hands a task back; the waiter never owns
///     the lock, never drains, never touches the policy's cache lines.
///     Whichever thread does hold the lock drains the add-buffers, takes
///     its own task, and serves the delegation queue before releasing.
///
/// Serving runs in one of two modes, fixed at construction
/// (micro_ablation's BM_ServeMode):
///   * batched (default, §8 flat combining): the holder snapshots a run
///     of queued requests with one `popWaiters` pass, pulls up to
///     `serveBurst` tasks from the policy in one `getTasks` call, and
///     publishes every answer behind a single release fence
///     (`serveBatch`).  Add-buffers are refilled at most once per
///     combining burst.
///   * serve-one (Listing 5, the ablation baseline): one policy lookup
///     and one release store per popped waiter.
class SyncScheduler final : public Scheduler {
 public:
  using Options = SyncSchedulerOptions;
  static constexpr std::size_t kDefaultSpscCapacity =
      Options::kDefaultSpscCapacity;
  static constexpr std::size_t kDefaultServeBurst =
      Options::kDefaultServeBurst;
  static constexpr std::size_t kMaxServeBurst = Options::kMaxServeBurst;

  /// Traced variant emits SchedDrain per non-empty add-buffer drain and
  /// one SchedServe per serve burst with the packed local/remote
  /// hand-off counts as payload (trace_event.hpp's packServePayload;
  /// serve-one mode emits per hand-off, local count 1).
  SyncScheduler(Topology topo, std::unique_ptr<SchedulerPolicy> policy,
                Options options = {}, Tracer* tracer = nullptr);

  void addReadyTask(Task* task, std::size_t cpu) override;
  Task* getReadyTask(std::size_t cpu) override;

  const char* name() const override { return "sync_dtlock"; }

 private:
  /// Answer queued getReadyTask delegations.  Caller must hold lock_;
  /// `cpu` is the holder's slot (trace emissions go into its stream).
  void serveWaiters(std::size_t cpu);
  void serveWaitersBatched(std::size_t cpu, std::size_t maxServes);
  void serveWaitersOneByOne(std::size_t cpu, std::size_t maxServes);

  Topology topo_;
  DTLock lock_;
  std::unique_ptr<SchedulerPolicy> policy_;
  AddBufferSet addBuffers_;
  const bool batchServe_;
  const std::size_t serveBurst_;
  const bool waiterLocality_;
};

}  // namespace ats
