#pragma once

#include <cstddef>
#include <deque>

namespace ats {

struct Task;

/// The synchronized scheduler surface the runtime's worker loop talks to.
/// `cpu` is the caller's logical CPU index within the runtime's Topology;
/// implementations may use it for SPSC buffer selection or NUMA affinity.
/// `getReadyTask` is non-blocking: nullptr means "nothing ready now".
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void addReadyTask(Task* task, std::size_t cpu) = 0;
  virtual Task* getReadyTask(std::size_t cpu) = 0;

  virtual const char* name() const = 0;
};

/// An *unsynchronized* ready-queue policy.  The paper's point in §3.2 is
/// that once the DTLock serializes access, the policy inside can be
/// written as plain single-threaded code and swapped freely (FIFO, LIFO,
/// NUMA-aware...).  Callers guarantee mutual exclusion.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual void addTask(Task* task, std::size_t cpu) = 0;
  virtual Task* getTask(std::size_t cpu) = 0;

  virtual const char* policyName() const = 0;
};

/// Global FIFO ready queue — the default policy for every scheduler
/// design in this repo until the NUMA-aware policies land.
class FifoScheduler final : public SchedulerPolicy {
 public:
  void addTask(Task* task, std::size_t /*cpu*/) override {
    ready_.push_back(task);
  }

  Task* getTask(std::size_t /*cpu*/) override {
    if (ready_.empty()) return nullptr;
    Task* task = ready_.front();
    ready_.pop_front();
    return task;
  }

  const char* policyName() const override { return "fifo"; }

 private:
  std::deque<Task*> ready_;
};

}  // namespace ats
