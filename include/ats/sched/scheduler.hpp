#pragma once

#include <cstddef>

#include "instr/tracer.hpp"

namespace ats {

struct Task;

/// The synchronized scheduler surface the runtime's worker loop talks to.
/// `cpu` is the caller's logical CPU index within the runtime's Topology;
/// implementations may use it for SPSC buffer selection or NUMA affinity.
/// `getReadyTask` is non-blocking: nullptr means "nothing ready now".
///
/// Every scheduler optionally carries a §5 Tracer.  The contract for
/// emission sites (kept by all three designs here):
///   * null-guard every emit, so the untraced configuration's hot paths
///     compile to exactly what they were before the instr layer;
///   * emit into the CALLER's stream (`cpu`) only — streams are
///     single-writer;
///   * emit only on bounded-frequency transitions (a successful serve,
///     a non-empty drain, a contended add).  Never on per-poll outcomes:
///     idle workers poll continuously and would saturate their rings
///     with noise the analyzer then mistakes for the whole story.
class Scheduler {
 public:
  explicit Scheduler(Tracer* tracer = nullptr) : tracer_(tracer) {}
  virtual ~Scheduler() = default;

  /// Failure-domain audit (all four kinds): a scheduler only ever moves
  /// opaque Task pointers — it never reads task state that depends on
  /// the body having run, and it never learns whether a task it handed
  /// out executed, failed, or was skipped by a cancellation drain.  The
  /// one obligation the drain adds is already the base contract: every
  /// task accepted by addReadyTask is handed out exactly once (none
  /// dropped, none duplicated), because the runtime's skip path still
  /// needs to dequeue the task to release its dependencies.
  virtual void addReadyTask(Task* task, std::size_t cpu) = 0;
  virtual Task* getReadyTask(std::size_t cpu) = 0;

  virtual const char* name() const = 0;

 protected:
  /// The one way drains are traced, shared by every buffered scheduler
  /// so the event's semantics (caller's stream, payload = tasks moved,
  /// silent when nothing moved) cannot drift per call site.  Feed it
  /// `drainInto`'s return value: `emitDrain(cpu, buffers.drainInto(p))`.
  void emitDrain(std::size_t cpu, std::size_t drained) {
    if (tracer_ != nullptr && drained != 0)
      tracer_->emit(cpu, TraceEvent::SchedDrain, drained);
  }

  Tracer* tracer_;  ///< null = untraced (the common case)
};

/// An *unsynchronized* ready-queue policy.  The paper's point in §3.2 is
/// that once the DTLock serializes access, the policy inside can be
/// written as plain single-threaded code and swapped freely (FIFO, LIFO,
/// NUMA-aware...).  Callers guarantee mutual exclusion.
/// The concrete policies live in sched/policies.hpp behind PolicyKind.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual void addTask(Task* task, std::size_t cpu) = 0;
  virtual Task* getTask(std::size_t cpu) = 0;

  /// Pull up to `n` tasks into `out` in one pass — the bulk form the
  /// batched delegation serve uses, so a combining burst costs the
  /// policy one call instead of one virtual dispatch per waiter.
  /// Returns how many were delivered (< n means the queue ran dry).
  /// The default loops over getTask; policies override with real bulk
  /// pops.  Same ordering contract as repeated getTask(cpu) calls.
  virtual std::size_t getTasks(Task** out, std::size_t n, std::size_t cpu) {
    std::size_t got = 0;
    while (got < n) {
      Task* task = getTask(cpu);
      if (task == nullptr) break;
      out[got++] = task;
    }
    return got;
  }

  virtual const char* policyName() const = 0;
};

}  // namespace ats
