#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "containers/spsc_queue.hpp"
#include "sched/scheduler.hpp"

namespace ats {

struct Task;

/// The per-CPU wait-free add-buffer front end (§3.1) shared by every
/// scheduler that decouples adds from the central lock.  CPU i is the
/// single producer of buffer i; whichever thread holds the scheduler's
/// lock is the (serialized) consumer of all of them, so the dtlock and
/// ptlock designs drain identical structures and their comparison
/// isolates the lock protocol alone.
class AddBufferSet {
 public:
  AddBufferSet(std::size_t numCpus, std::size_t capacity) {
    buffers_.reserve(numCpus);
    for (std::size_t cpu = 0; cpu < numCpus; ++cpu) {
      buffers_.push_back(std::make_unique<SpscQueue<Task*>>(capacity));
    }
  }

  std::size_t numCpus() const { return buffers_.size(); }

  /// Wait-free; false when cpu's buffer is full (caller runs the
  /// overflow drain protocol under the lock).
  bool tryPush(Task* task, std::size_t cpu) {
    return buffers_[cpu]->push(task);
  }

  /// Move every published add into the policy, crediting each task to
  /// the CPU that enqueued it.  Caller must hold the scheduler's lock.
  /// Returns the number of tasks moved (the SchedDrain trace payload).
  std::size_t drainInto(SchedulerPolicy& policy) {
    std::size_t drained = 0;
    for (std::size_t cpu = 0; cpu < buffers_.size(); ++cpu) {
      buffers_[cpu]->consumeAll([&](Task* task) {
        policy.addTask(task, cpu);
        ++drained;
      });
    }
    return drained;
  }

 private:
  std::vector<std::unique_ptr<SpscQueue<Task*>>> buffers_;
};

}  // namespace ats
