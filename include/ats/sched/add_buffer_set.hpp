#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/topology.hpp"
#include "containers/spsc_queue.hpp"
#include "sched/scheduler.hpp"

namespace ats {

struct Task;

/// The per-CPU wait-free add-buffer front end (§3.1) shared by every
/// scheduler that decouples adds from the central lock.  CPU i is the
/// single producer of buffer i; whichever thread holds the scheduler's
/// lock is the (serialized) consumer of all of them, so the dtlock and
/// ptlock designs drain identical structures and their comparison
/// isolates the lock protocol alone.
///
/// The rings are additionally sharded by NUMA domain
/// (Topology::domainOfSlot): `drainDomain` lets the lock holder empty
/// just the rings whose producers live on one domain — the waiters'
/// domain during a batched serve, the getter's own during a refill — so
/// the common drain touches a per-domain slice of cache lines instead
/// of every CPU's.  `drainInto` keeps the flat everything-pass as the
/// fallback that guarantees no ring can be stranded.
class AddBufferSet {
 public:
  /// "No cap" sentinel for drainDomain's maxTasks.
  static constexpr std::size_t kNoCap = ~std::size_t{0};

  AddBufferSet(const Topology& topo, std::size_t capacity) {
    const std::size_t slots = std::max<std::size_t>(1, topo.slotCount());
    buffers_.reserve(slots);
    for (std::size_t slot = 0; slot < slots; ++slot) {
      buffers_.push_back(std::make_unique<SpscQueue<Task*>>(capacity));
    }
    const std::size_t domains =
        std::max<std::size_t>(1, topo.numNumaDomains);
    domainSlots_.resize(domains);
    for (std::size_t slot = 0; slot < slots; ++slot) {
      std::size_t domain = topo.domainOfSlot(slot);
      if (domain >= domains) domain = domains - 1;
      domainSlots_[domain].push_back(slot);
    }
  }

  std::size_t numCpus() const { return buffers_.size(); }
  std::size_t numDomains() const { return domainSlots_.size(); }

  /// Wait-free; false when cpu's buffer is full (caller runs the
  /// overflow drain protocol under the lock).
  bool tryPush(Task* task, std::size_t cpu) {
    return buffers_[cpu]->push(task);
  }

  /// Move every published add into the policy, crediting each task to
  /// the CPU that enqueued it.  Caller must hold the scheduler's lock.
  /// Returns the number of tasks moved (the SchedDrain trace payload).
  std::size_t drainInto(SchedulerPolicy& policy) {
    std::size_t drained = 0;
    for (std::size_t cpu = 0; cpu < buffers_.size(); ++cpu) {
      buffers_[cpu]->consumeAll([&](Task* task) {
        policy.addTask(task, cpu);
        ++drained;
      });
    }
    return drained;
  }

  /// Drain at most `maxTasks` adds from ONE domain's rings into the
  /// policy (each ring still drained FIFO, rings in slot order, one
  /// index update per touched ring).  Caller must hold the scheduler's
  /// lock.  Returns the number moved — the same SchedDrain currency as
  /// drainInto.
  std::size_t drainDomain(SchedulerPolicy& policy, std::size_t domain,
                          std::size_t maxTasks = kNoCap) {
    std::size_t drained = 0;
    for (const std::size_t slot : domainSlots_[domain]) {
      if (drained >= maxTasks) break;
      drained += buffers_[slot]->consumeN(maxTasks - drained, [&](Task* task) {
        policy.addTask(task, slot);
      });
    }
    return drained;
  }

 private:
  std::vector<std::unique_ptr<SpscQueue<Task*>>> buffers_;
  std::vector<std::vector<std::size_t>> domainSlots_;
};

}  // namespace ats
