#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/topology.hpp"
#include "locks/locks.hpp"
#include "sched/policy_kind.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// Global FIFO ready queue — the default policy for every scheduler
/// design in this repo.
class FifoPolicy final : public SchedulerPolicy {
 public:
  void addTask(Task* task, std::size_t /*cpu*/) override {
    ready_.push_back(task);
  }

  Task* getTask(std::size_t /*cpu*/) override {
    if (ready_.empty()) return nullptr;
    Task* task = ready_.front();
    ready_.pop_front();
    return task;
  }

  std::size_t getTasks(Task** out, std::size_t n,
                       std::size_t /*cpu*/) override {
    const std::size_t got = n < ready_.size() ? n : ready_.size();
    for (std::size_t i = 0; i < got; ++i) {
      out[i] = ready_.front();
      ready_.pop_front();
    }
    return got;
  }

  const char* policyName() const override { return "fifo"; }

 private:
  std::deque<Task*> ready_;
};

/// Global LIFO stack: newest-ready-first.  Depth-first execution keeps
/// the data a just-finished task touched hot in cache at the cost of
/// fairness — old tasks can starve while new ones keep arriving, which
/// is exactly the trade-off BM_Policy prices.
class LifoPolicy final : public SchedulerPolicy {
 public:
  void addTask(Task* task, std::size_t /*cpu*/) override {
    ready_.push_back(task);
  }

  Task* getTask(std::size_t /*cpu*/) override {
    if (ready_.empty()) return nullptr;
    Task* task = ready_.back();
    ready_.pop_back();
    return task;
  }

  std::size_t getTasks(Task** out, std::size_t n,
                       std::size_t /*cpu*/) override {
    const std::size_t got = n < ready_.size() ? n : ready_.size();
    for (std::size_t i = 0; i < got; ++i) {
      out[i] = ready_.back();
      ready_.pop_back();
    }
    return got;
  }

  const char* policyName() const override { return "lifo"; }

 private:
  std::vector<Task*> ready_;
};

/// Per-NUMA-domain FIFOs, local domain first (§3.1's "one per core...
/// one per NUMA node" layout applied to the ready queue).  Adds land in
/// the enqueuing CPU's domain; a getter drains its own domain before
/// round-robining the remote ones, so under load tasks execute where
/// their producer's data lives and remote pulls only happen instead of
/// idling.  Within one domain the order stays FIFO.
///
/// Unlike the single-queue policies, each domain carries its OWN
/// SpinLock: the policy is a lock hierarchy, not a single critical
/// section.  Under a serializing scheduler (DTLock) the locks are
/// uncontended-by-construction and cost one local RMW; under a
/// concurrent caller, adds and gets on DIFFERENT domains proceed fully
/// in parallel and only same-domain traffic serializes — the queue-side
/// analogue of the deps/pool domain sharding.  At most one domain lock
/// is ever held at a time (getters release one domain before probing
/// the next), so lock ordering is trivial and deadlock-free.
class NumaFifoPolicy final : public SchedulerPolicy {
 public:
  explicit NumaFifoPolicy(const Topology& topo) : topo_(topo) {
    // Normalize the STORED topology, not just the queue count: domainOf
    // feeds every cpu through topo_.numaDomainOf, whose per-domain math
    // divides by both fields — a zero-domain (or zero-CPU) hand-built
    // Topology must degrade to one global FIFO, not to UB.
    if (topo_.numNumaDomains < 1) topo_.numNumaDomains = 1;
    if (topo_.numCpus < 1) topo_.numCpus = 1;
    domainCount_ = topo_.numNumaDomains;
    // unique_ptr<Domain[]>, not vector<Domain>: a Domain is pinned by
    // its SpinLock (atomics are not movable) and vector requires
    // move-insertable elements even for the initial fill.
    domains_ = std::make_unique<Domain[]>(domainCount_);
  }

  void addTask(Task* task, std::size_t cpu) override {
    Domain& domain = domains_[domainOf(cpu)];
    std::lock_guard<SpinLock> guard(domain.lock);
    domain.queue.push_back(task);
  }

  Task* getTask(std::size_t cpu) override {
    const std::size_t home = domainOf(cpu);
    for (std::size_t i = 0; i < domainCount_; ++i) {
      Domain& domain = domains_[(home + i) % domainCount_];
      std::lock_guard<SpinLock> guard(domain.lock);
      if (!domain.queue.empty()) {
        Task* task = domain.queue.front();
        domain.queue.pop_front();
        return task;
      }
    }
    return nullptr;
  }

  std::size_t getTasks(Task** out, std::size_t n, std::size_t cpu) override {
    const std::size_t home = domainOf(cpu);
    std::size_t got = 0;
    for (std::size_t i = 0; i < domainCount_ && got < n; ++i) {
      Domain& domain = domains_[(home + i) % domainCount_];
      std::lock_guard<SpinLock> guard(domain.lock);
      while (got < n && !domain.queue.empty()) {
        out[got++] = domain.queue.front();
        domain.queue.pop_front();
      }
    }
    return got;
  }

  const char* policyName() const override { return "numa_fifo"; }

 private:
  /// One ready FIFO plus its lock, on a private cache line so domain 0's
  /// lock traffic never invalidates domain 1's.
  struct alignas(64) Domain {
    SpinLock lock;
    std::deque<Task*> queue;
  };

  std::size_t domainOf(std::size_t cpu) const {
    // Topology::domainOfSlot owns the slot→domain rule (reserved slots —
    // the Runtime's spawner — fold onto a real CPU's domain, so the
    // spawner simply shares domain 0's queue); the clamp covers
    // hand-built topologies whose domain count exceeds our normalized
    // queue count.
    const std::size_t domain = topo_.domainOfSlot(cpu);
    return domain < domainCount_ ? domain : domainCount_ - 1;
  }

  Topology topo_;
  std::size_t domainCount_ = 0;
  std::unique_ptr<Domain[]> domains_;
};

/// Build the policy a PolicyKind names.  `topo` must be the same shape
/// the owning scheduler is constructed with (NumaFifo sizes its queues
/// from it; the others ignore it).
inline std::unique_ptr<SchedulerPolicy> makePolicy(PolicyKind kind,
                                                   const Topology& topo) {
  switch (kind) {
    case PolicyKind::Fifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::Lifo: return std::make_unique<LifoPolicy>();
    case PolicyKind::NumaFifo: return std::make_unique<NumaFifoPolicy>(topo);
  }
  assert(false && "unknown PolicyKind");
  return std::make_unique<FifoPolicy>();
}

}  // namespace ats
