#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "common/topology.hpp"
#include "sched/policy_kind.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// Global FIFO ready queue — the default policy for every scheduler
/// design in this repo.
class FifoPolicy final : public SchedulerPolicy {
 public:
  void addTask(Task* task, std::size_t /*cpu*/) override {
    ready_.push_back(task);
  }

  Task* getTask(std::size_t /*cpu*/) override {
    if (ready_.empty()) return nullptr;
    Task* task = ready_.front();
    ready_.pop_front();
    return task;
  }

  std::size_t getTasks(Task** out, std::size_t n,
                       std::size_t /*cpu*/) override {
    const std::size_t got = n < ready_.size() ? n : ready_.size();
    for (std::size_t i = 0; i < got; ++i) {
      out[i] = ready_.front();
      ready_.pop_front();
    }
    return got;
  }

  const char* policyName() const override { return "fifo"; }

 private:
  std::deque<Task*> ready_;
};

/// Global LIFO stack: newest-ready-first.  Depth-first execution keeps
/// the data a just-finished task touched hot in cache at the cost of
/// fairness — old tasks can starve while new ones keep arriving, which
/// is exactly the trade-off BM_Policy prices.
class LifoPolicy final : public SchedulerPolicy {
 public:
  void addTask(Task* task, std::size_t /*cpu*/) override {
    ready_.push_back(task);
  }

  Task* getTask(std::size_t /*cpu*/) override {
    if (ready_.empty()) return nullptr;
    Task* task = ready_.back();
    ready_.pop_back();
    return task;
  }

  std::size_t getTasks(Task** out, std::size_t n,
                       std::size_t /*cpu*/) override {
    const std::size_t got = n < ready_.size() ? n : ready_.size();
    for (std::size_t i = 0; i < got; ++i) {
      out[i] = ready_.back();
      ready_.pop_back();
    }
    return got;
  }

  const char* policyName() const override { return "lifo"; }

 private:
  std::vector<Task*> ready_;
};

/// Per-NUMA-domain FIFOs, local domain first (§3.1's "one per core...
/// one per NUMA node" layout applied to the ready queue).  Adds land in
/// the enqueuing CPU's domain; a getter drains its own domain before
/// round-robining the remote ones, so under load tasks execute where
/// their producer's data lives and remote pulls only happen instead of
/// idling.  Within one domain the order stays FIFO.
class NumaFifoPolicy final : public SchedulerPolicy {
 public:
  explicit NumaFifoPolicy(const Topology& topo) : topo_(topo) {
    // Normalize the STORED topology, not just the queue count: domainOf
    // feeds every cpu through topo_.numaDomainOf, whose per-domain math
    // divides by both fields — a zero-domain (or zero-CPU) hand-built
    // Topology must degrade to one global FIFO, not to UB.
    if (topo_.numNumaDomains < 1) topo_.numNumaDomains = 1;
    if (topo_.numCpus < 1) topo_.numCpus = 1;
    domains_.resize(topo_.numNumaDomains);
  }

  void addTask(Task* task, std::size_t cpu) override {
    domains_[domainOf(cpu)].push_back(task);
  }

  Task* getTask(std::size_t cpu) override {
    const std::size_t home = domainOf(cpu);
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      auto& queue = domains_[(home + i) % domains_.size()];
      if (!queue.empty()) {
        Task* task = queue.front();
        queue.pop_front();
        return task;
      }
    }
    return nullptr;
  }

  std::size_t getTasks(Task** out, std::size_t n, std::size_t cpu) override {
    const std::size_t home = domainOf(cpu);
    std::size_t got = 0;
    for (std::size_t i = 0; i < domains_.size() && got < n; ++i) {
      auto& queue = domains_[(home + i) % domains_.size()];
      while (got < n && !queue.empty()) {
        out[got++] = queue.front();
        queue.pop_front();
      }
    }
    return got;
  }

  const char* policyName() const override { return "numa_fifo"; }

 private:
  std::size_t domainOf(std::size_t cpu) const {
    // Topology::domainOfSlot owns the slot→domain rule (reserved slots —
    // the Runtime's spawner — fold onto a real CPU's domain, so the
    // spawner simply shares domain 0's queue); the clamp covers
    // hand-built topologies whose domain count exceeds our normalized
    // queue count.
    const std::size_t domain = topo_.domainOfSlot(cpu);
    return domain < domains_.size() ? domain : domains_.size() - 1;
  }

  Topology topo_;
  std::vector<std::deque<Task*>> domains_;
};

/// Build the policy a PolicyKind names.  `topo` must be the same shape
/// the owning scheduler is constructed with (NumaFifo sizes its queues
/// from it; the others ignore it).
inline std::unique_ptr<SchedulerPolicy> makePolicy(PolicyKind kind,
                                                   const Topology& topo) {
  switch (kind) {
    case PolicyKind::Fifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::Lifo: return std::make_unique<LifoPolicy>();
    case PolicyKind::NumaFifo: return std::make_unique<NumaFifoPolicy>(topo);
  }
  assert(false && "unknown PolicyKind");
  return std::make_unique<FifoPolicy>();
}

}  // namespace ats
