#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/topology.hpp"
#include "containers/chase_lev_deque.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// WorkStealingScheduler's construction-time knobs; mirrored by
/// RuntimeConfig and swept by micro_steal.  (Namespace-scope rather than
/// nested for the same GCC default-argument reason as
/// SyncSchedulerOptions.)
struct WorkStealingSchedulerOptions {
  /// Initial per-slot deque capacity; the deque grows past it on
  /// demand, so unlike the SPSC schedulers there is no overflow
  /// protocol to size against.  RuntimeConfig reuses `spscCapacity` for
  /// this (it is the same "per-CPU buffer" knob).
  static constexpr std::size_t kDefaultDequeCapacity = 256;
  /// Most REMOTE-domain victims one getReadyTask call probes (the local
  /// domain is always probed in full).  Clamped to at least 1 so remote
  /// work can never become unreachable.
  static constexpr std::size_t kDefaultStealProbeLimit = 64;

  std::size_t dequeCapacity = kDefaultDequeCapacity;
  std::size_t stealProbeLimit = kDefaultStealProbeLimit;
};

/// The LLVM-family architectural alternative (fig7-9's "llvm_like"
/// curve), now a real design instead of a relabeled SyncScheduler: one
/// Chase–Lev deque per CPU slot, no central lock, no shared policy
/// object — the decentralized counterpoint to the paper's centralized
/// delegation.
///
///   * addReadyTask(task, cpu): push onto slot `cpu`'s own deque.  The
///     caller is that slot's single thread (the Scheduler contract), so
///     this is the deque's owner-side push — no shared RMW at all on
///     the common path.  External submission needs no extra lock for
///     the same reason: the spawner has its own reserved slot, its
///     deque is steal-only ingress for the workers.
///   * getReadyTask(cpu): pop slot `cpu`'s deque LIFO (depth-first,
///     cache-warm — the same trade LifoPolicy prices); on empty, steal
///     FIFO from victims, every same-NUMA-domain slot first (Topology's
///     domain map, the way NumaFifoPolicy uses it), then remote slots
///     round-robin behind a rotating cursor, at most `stealProbeLimit`
///     remote probes per call before reporting empty.  A steal CAS lost
///     to a competitor retries the same victim: an abort means someone
///     else just removed an element, so the retry loop is progress-
///     bounded by the victim's queue length.
///
/// This design bypasses the SchedulerPolicy serialization model the
/// other three schedulers share: there is no point where one thread
/// holds all the tasks, so a pluggable single-threaded policy object
/// has nothing to serialize against.  RuntimeConfig::policy is
/// therefore ignored under SchedulerKind::WorkStealing (the per-deque
/// LIFO/steal-FIFO order IS the policy).
///
/// Traced variant emits one SchedSteal per successful steal (payload =
/// victim slot) into the thief's stream — bounded by tasks executed,
/// per the Scheduler emission contract.  Local pops are deliberately
/// untraced: they are the hot path whose zero-shared-RMW property the
/// design exists to demonstrate.
class WorkStealingScheduler final : public Scheduler {
 public:
  using Options = WorkStealingSchedulerOptions;

  WorkStealingScheduler(Topology topo, Options options = {},
                        Tracer* tracer = nullptr);

  void addReadyTask(Task* task, std::size_t cpu) override;
  Task* getReadyTask(std::size_t cpu) override;

  const char* name() const override { return "work_steal"; }

  /// Remote probe bound after construction-time clamping (micro_steal
  /// labels and tests read it back).
  std::size_t stealProbeLimit() const { return probeLimit_; }

 private:
  /// Steal from `victim` into `out`, retrying lost CASes, emitting
  /// SchedSteal into `cpu`'s stream on success.
  bool stealFrom(std::size_t victim, std::size_t cpu, Task*& out);

  /// Per-slot rotating cursor into the remote victim list.  Owner-only
  /// (each slot's single thread), padded so neighbouring slots' cursor
  /// updates never share a line.
  struct alignas(64) ProbeCursor {
    std::size_t next = 0;
  };

  Topology topo_;
  std::size_t probeLimit_;
  std::vector<std::unique_ptr<ChaseLevDeque<Task*>>> deques_;
  std::unique_ptr<ProbeCursor[]> cursors_;
  /// victim slot indices per slot, precomputed at construction:
  /// same-domain slots (always probed, in ring order from the slot) and
  /// the rest (rotating bounded probe).
  std::vector<std::vector<std::uint32_t>> localVictims_;
  std::vector<std::vector<std::uint32_t>> remoteVictims_;
};

}  // namespace ats
