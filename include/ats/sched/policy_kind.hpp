#pragma once

namespace ats {

/// The ready-queue policies pluggable into the serialized schedulers —
/// §3.2's extensibility argument made sweepable (micro_ablation's
/// BM_Policy).  Values are stable: benches pass them as integer args.
/// Split from policies.hpp so RuntimeConfig can name a policy without
/// pulling the policy implementations (and their containers) into
/// every translation unit that touches a config.
enum class PolicyKind {
  Fifo = 0,      ///< one global FIFO (the paper's default)
  Lifo = 1,      ///< one global LIFO stack (depth-first, cache-warm)
  NumaFifo = 2,  ///< per-NUMA-domain FIFOs, local domain first
};

/// Lower-case tag for bench/table headers ("fifo", "lifo", "numa_fifo").
constexpr const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Fifo: return "fifo";
    case PolicyKind::Lifo: return "lifo";
    case PolicyKind::NumaFifo: return "numa_fifo";
  }
  return "unknown";
}

}  // namespace ats
