#pragma once

#include <memory>
#include <mutex>

#include "common/topology.hpp"
#include "sched/scheduler.hpp"

namespace ats {

/// The paper's "serial insertion" baseline and the architectural stand-in
/// for GOMP-style runtimes: one OS mutex in front of one ready queue.
/// Every add and every get serializes through the kernel futex path.
/// Runs the same SchedulerPolicy as the other designs so benchmarks
/// compare synchronization substrates, not queue implementations.
class CentralMutexScheduler final : public Scheduler {
 public:
  /// Traced variant emits SchedLockContended for every add that found
  /// the mutex held (and then blocked) — serial insertion made visible.
  explicit CentralMutexScheduler(
      Topology topo, std::unique_ptr<SchedulerPolicy> policy = nullptr,
      Tracer* tracer = nullptr);

  void addReadyTask(Task* task, std::size_t cpu) override;
  Task* getReadyTask(std::size_t cpu) override;

  const char* name() const override { return "central_mutex"; }

 private:
  Topology topo_;
  std::mutex mutex_;
  std::unique_ptr<SchedulerPolicy> policy_;
};

}  // namespace ats
