#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace ats {

class Runtime;

/// Problem-size preset for an app: Quick keeps every figure runnable in
/// seconds on a laptop/CI host (the default), Full is the paper-sized
/// sweep behind ATS_FULL (EXPERIMENTS.md "Quick vs full protocol").
enum class AppScale { Quick, Full };

/// Outcome of checking one parallel run against the serial reference.
struct VerifyResult {
  bool ok = false;
  double checksum = 0.0;     ///< sum over the parallel output (diagnostics)
  double maxRelError = 0.0;  ///< worst per-element relative error seen
};

/// One timed, verified parallel run of an app at one block size — the
/// unit the figure harnesses aggregate (fig_common::runFigure).
struct AppResult {
  bool verified = false;
  double checksum = 0.0;
  double maxRelError = 0.0;
  double seconds = 0.0;
  double workUnits = 0.0;  ///< app-defined work total (flops/cell-updates)
  std::size_t tasks = 0;   ///< tasks the run spawned

  /// Work units per second — the y-axis input of the fig4-9 efficiency
  /// metric (runFigure normalizes it against the app's grid peak).
  double throughput() const {
    return seconds > 0.0 ? workUnits / seconds : 0.0;
  }

  /// Work units per task — the paper's granularity x-axis.  Smaller
  /// block sizes mean more, finer tasks at the same total work.
  double grainWorkUnits() const {
    return tasks > 0 ? workUnits / static_cast<double>(tasks) : 0.0;
  }
};

/// One benchmark application of the paper's evaluation set (§6.1): a
/// compact task-graph kernel with a serial reference implementation and
/// an answer check.  The contract the figure harnesses rely on:
///
///   * `defaultBlockSizes()` is the granularity grid, coarse -> fine
///     (fig10 takes `.back()` as the finest flood).
///   * `run()` (re)initializes the parallel state, times
///     `runParallel()` — which must spawn its whole graph and taskwait —
///     and verifies the result against the serial reference, which is
///     computed once per App instance and reused across runs.
///   * `verify()` compares element-wise against the serial answer under
///     `tolerance()`: relative error per element, |par - ser| /
///     max(1, |ser|).  Most apps are bit-exact by construction (their
///     inout chains fix the floating-point association independent of
///     block size); dotprod/hpccg/cholesky regroup reductions by block,
///     so they carry a wider documented tolerance (DESIGN.md "Apps").
///     A benchmark that computes the wrong answer measures nothing, so
///     runFigure aborts the whole figure on a failed verification.
///   * `corruptOutput()` perturbs the parallel answer so the test suite
///     can prove `verify()` actually rejects wrong results.
class App {
 public:
  virtual ~App() = default;

  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const std::string& name() const { return name_; }
  AppScale scale() const { return scale_; }
  double tolerance() const { return tolerance_; }

  /// Granularity grid, coarse -> fine.  Every entry divides the app's
  /// problem dimension, so block math never needs remainder handling.
  virtual std::vector<std::size_t> defaultBlockSizes() const = 0;

  /// Total work of one run (block-size independent by construction).
  virtual double totalWorkUnits() const = 0;

  /// Compute the serial reference answer (no Runtime involved).
  virtual void runSerial() = 0;

  /// Reset the parallel state to the initial condition (untimed).
  virtual void initParallel(std::size_t blockSize) = 0;

  /// Spawn the task graph on `rt` and taskwait; returns tasks spawned.
  /// Called on the spawner thread only (the Runtime threading contract).
  virtual std::size_t runParallel(Runtime& rt, std::size_t blockSize) = 0;

  /// Compare the parallel answer against the serial reference.
  virtual VerifyResult verify() const = 0;

  /// Damage the parallel answer (testing the checker, not the app).
  virtual void corruptOutput() = 0;

  /// The harness entry point: ensure the serial reference, reinitialize,
  /// time the graph, verify.
  AppResult run(Runtime& rt, std::size_t blockSize);

  /// Compute the serial reference if this instance has not yet.
  void ensureSerial();

 protected:
  App(std::string name, AppScale scale, double tolerance)
      : name_(std::move(name)), scale_(scale), tolerance_(tolerance) {}

  /// Element-wise relative comparison under `tolerance`; NaN anywhere
  /// fails.  Shared by every app's verify().
  static VerifyResult compare(const std::vector<double>& reference,
                              const std::vector<double>& output,
                              double tolerance);

 private:
  std::string name_;
  AppScale scale_;
  double tolerance_;
  bool serialDone_ = false;
};

/// The paper's eight benchmark apps, the names fig4-11 use:
/// "dotprod", "matmul", "heat", "nbody", "cholesky", "hpccg", "lulesh",
/// "miniamr".  Throws std::invalid_argument on any other name.
std::unique_ptr<App> makeApp(const std::string& name, AppScale scale);

/// All valid makeApp names (stable order, the list above).
const std::vector<std::string>& appNames();

}  // namespace ats
