#pragma once

#include <cstddef>

namespace ats {

/// The §4 memory-layer contract.  Both implementations hand out storage
/// suitable for any object with fundamental alignment; callers return
/// blocks with the same size they requested (sized deallocation is what
/// lets the pool find the size class without a lookup).
///
/// Thread model: allocate/deallocate are callable from any thread, and a
/// block allocated on one thread may be freed on another (the task-churn
/// shape: a successor's releasing thread frees the predecessor's
/// descriptor).
class Allocator {
 public:
  /// Every allocation is at least this aligned.
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  virtual ~Allocator() = default;

  /// Storage for `size` bytes, aligned to kAlignment.  Never returns
  /// nullptr — allocation failure aborts, like the operator new it
  /// ultimately rests on.
  virtual void* allocate(std::size_t size) = 0;

  /// Return a block previously obtained from allocate(size) on any
  /// thread.  `size` must match the allocation request exactly.
  virtual void deallocate(void* ptr, std::size_t size) = 0;

  virtual const char* name() const = 0;
};

}  // namespace ats
