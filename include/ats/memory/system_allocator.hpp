#pragma once

#include <new>

#include "memory/allocator.hpp"

namespace ats {

/// Plain operator-new passthrough — the "w/o jemalloc" baseline of the
/// §4 ablation.  Whatever scalability the system malloc has is what the
/// benches measure; the point of the PoolAllocator is to beat this on
/// task-descriptor-sized churn.
class SystemAllocator final : public Allocator {
 public:
  static SystemAllocator& instance();

  void* allocate(std::size_t size) override {
    return ::operator new(size);
  }

  void deallocate(void* ptr, std::size_t size) override {
    ::operator delete(ptr, size);
  }

  const char* name() const override { return "system"; }
};

}  // namespace ats
