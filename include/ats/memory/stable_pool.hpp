#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "locks/locks.hpp"

namespace ats {

/// Chunked pool of fixed-size raw blocks whose addresses are STABLE for
/// the pool's lifetime: blocks are carved out of large chunks and never
/// returned to the system until the pool is destroyed.  This is the
/// allocation discipline concurrent structures with lock-free readers
/// need — a reader holding a block pointer can never see the storage
/// disappear under it (the ObjectTable's Entry nodes are the first
/// customer: its TLS lookup cache and lock-free probes both depend on
/// published entries staying put).
///
/// allocate()/recycle() take a SpinLock, so this is NOT a hot-path
/// allocator — it is for objects allocated once per logical key (first
/// touch of a dependency address) and read forever after.  recycle()
/// exists for the one cold race the lock-free-insert idiom creates: a
/// block built speculatively, lost the publishing CAS, and therefore
/// never became visible to anyone — only such unpublished blocks may be
/// recycled.
///
/// The pool hands out raw storage; callers placement-new into it and
/// are responsible for destroying every object they constructed before
/// the pool dies (the pool frees memory, it does not run destructors).
class StablePool {
 public:
  /// Blocks of `blockBytes`, each aligned to `blockAlign` (which must
  /// be a power of two).  The stride between blocks is rounded up to
  /// the alignment, so requesting 64-byte alignment also gives each
  /// block its own cache line(s) — no false sharing between neighbors.
  StablePool(std::size_t blockBytes, std::size_t blockAlign,
             std::size_t blocksPerChunk = 256)
      : stride_((blockBytes + blockAlign - 1) & ~(blockAlign - 1)),
        align_(blockAlign),
        blocksPerChunk_(blocksPerChunk),
        usedInChunk_(blocksPerChunk) {}

  ~StablePool() {
    for (void* chunk : chunks_) {
      ::operator delete(chunk, std::align_val_t{align_});
    }
  }

  StablePool(const StablePool&) = delete;
  StablePool& operator=(const StablePool&) = delete;

  /// Raw storage for one block.  Thread-safe; the lock is held for a
  /// pointer bump (or a freelist pop), plus one chunk allocation every
  /// `blocksPerChunk` calls.
  void* allocate() {
    std::lock_guard<SpinLock> guard(lock_);
    if (!freeList_.empty()) {
      void* block = freeList_.back();
      freeList_.pop_back();
      return block;
    }
    if (usedInChunk_ == blocksPerChunk_) {
      chunks_.push_back(::operator new(stride_ * blocksPerChunk_,
                                       std::align_val_t{align_}));
      usedInChunk_ = 0;
    }
    void* block = static_cast<char*>(chunks_.back()) +
                  stride_ * usedInChunk_;
    ++usedInChunk_;
    return block;
  }

  /// Return a block that was never published to any other thread (see
  /// class comment).  The caller has already destroyed its contents.
  void recycle(void* block) {
    std::lock_guard<SpinLock> guard(lock_);
    freeList_.push_back(block);
  }

  std::size_t blockStride() const { return stride_; }
  std::size_t chunkCount() const {
    std::lock_guard<SpinLock> guard(lock_);
    return chunks_.size();
  }

 private:
  const std::size_t stride_;
  const std::size_t align_;
  const std::size_t blocksPerChunk_;

  mutable SpinLock lock_;
  std::vector<void*> chunks_;
  std::size_t usedInChunk_;
  std::vector<void*> freeList_;
};

}  // namespace ats
