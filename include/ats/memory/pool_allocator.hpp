#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "locks/locks.hpp"
#include "memory/allocator.hpp"

namespace ats {

class PoolThreadCache;

/// The §4 thread-caching scalable allocator (the jemalloc role in the
/// paper's ablation), specialized for task-descriptor-sized churn.
///
/// Three tiers, hot to cold:
///
///   * **Magazines** — per-thread, per-size-class LIFO arrays of free
///     blocks.  The hot path (allocate/free on the same thread) is a
///     bump of a thread-local counter: no atomics, no locks, no shared
///     cache lines.
///   * **Remote-free lists** — one Treiber stack per thread cache.  A
///     block freed on a thread other than its allocator goes back to
///     the *owning* thread's remote list with one release-CAS (the
///     producer/consumer `crossFree` shape: a successor's releasing
///     thread frees the predecessor's descriptor).  The owner drains
///     the whole list with a single exchange the next time a magazine
///     runs dry, so cross-thread frees never contend on a global lock.
///   * **Central depot** — per-size-class freelist under a SpinLock,
///     refilled by carving chunked slabs from operator new.  Magazines
///     refill from and overflow to the depot in batches of
///     kRefillBatch/kFlushBatch, so depot lock traffic is 1/batch of
///     the allocation rate.  Depots are further sharded by NUMA domain
///     (kNumDepotShards / setThreadDomain): threads on different
///     domains hit disjoint locks and freelists, and carved slabs stay
///     with the carving thread's domain.
///
/// Every block carries a 16-byte header (owning thread cache + size
/// class), so `deallocate` finds the owner without any lookup and the
/// user area stays kAlignment-aligned.  Requests too large for the
/// class table fall through to operator new.
///
/// Thread caches are adopted, not destroyed: a cache whose thread exits
/// flushes its magazines to the depot and parks on an inactive list for
/// the next new thread, so its remote-free list keeps accepting frees
/// from surviving threads.  The singleton itself is intentionally
/// leaked — thread-local cache destructors may run arbitrarily late in
/// shutdown and must always find it alive.
///
/// Freed blocks are poisoned with kPoisonByte (default: on in debug
/// builds, off in NDEBUG, toggleable at runtime) so use-after-free of a
/// recycled descriptor surfaces as garbage instead of stale-but-
/// plausible data.
class PoolAllocator final : public Allocator {
 public:
  /// Per-block bookkeeping prefix (owner cache + size class).
  static constexpr std::size_t kHeaderBytes = 16;

  /// Size classes run 32B..8KiB in ~1.5x steps; requests over
  /// kMaxPooledSize fall through to operator new.
  static constexpr std::size_t kNumClasses = 17;
  static constexpr std::size_t kMaxBlockSize = 8192;
  static constexpr std::size_t kMaxPooledSize = kMaxBlockSize - kHeaderBytes;

  /// Magazine geometry: capacity per (thread, class), and the batch
  /// sizes moved per depot interaction.
  static constexpr std::size_t kMagazineCapacity = 64;
  static constexpr std::size_t kRefillBatch = 32;
  static constexpr std::size_t kFlushBatch = 32;

  /// Central depots are sharded by NUMA domain so refill/flush traffic
  /// from different domains never meets on a lock or a freelist cache
  /// line, and carved chunks stay domain-local.  Sized for the largest
  /// preset (Rome's 8 NPS4 domains); larger domain ids wrap.
  static constexpr std::size_t kNumDepotShards = 8;

  static constexpr unsigned char kPoisonByte = 0xDE;

  static PoolAllocator& instance();

  void* allocate(std::size_t size) override;
  void deallocate(void* ptr, std::size_t size) override;
  const char* name() const override { return "pool"; }

  /// Block size (header included) serving a `userSize` request, or 0
  /// when the request falls through to operator new.
  static std::size_t blockSizeFor(std::size_t userSize);

  /// Total slab bytes carved from the system so far (never returned —
  /// the depot keeps chunks for reuse).  A bounded workload plateaus.
  std::size_t reservedBytes() const {
    return reservedBytes_.load(std::memory_order_relaxed);
  }

  /// Bind the calling thread's depot traffic to `domain`'s shard
  /// (modulo kNumDepotShards).  The Runtime calls this per worker with
  /// Topology::domainOfSlot; threads that never call it use shard 0,
  /// which is exactly the pre-sharding single-depot behavior.  Applies
  /// to the caller's current cache immediately and to any cache the
  /// thread adopts later.
  void setThreadDomain(std::size_t domain);

  void setPoisoning(bool on) {
    poison_.store(on, std::memory_order_relaxed);
  }
  bool poisoningEnabled() const {
    return poison_.load(std::memory_order_relaxed);
  }

  /// Test/stats introspection, all relative to the calling thread's
  /// cache: current magazine fill for the class serving `userSize`,
  /// blocks parked in that class's central depots (summed across every
  /// shard; the per-shard variant isolates one), blocks other threads
  /// have pushed to this thread's remote-free list, and the depot shard
  /// the caller's cache is bound to.
  std::size_t testLocalMagazineFill(std::size_t userSize);
  std::size_t testDepotFree(std::size_t userSize);
  std::size_t testDepotFreeOnShard(std::size_t userSize, std::size_t shard);
  std::size_t testRemotePendingOnCaller();
  std::size_t testCallerDepotShard();

 private:
  friend class PoolThreadCache;

  PoolAllocator();
  ~PoolAllocator() override = default;

  struct alignas(64) Depot {
    SpinLock lock;
    void* freeHead = nullptr;
    std::size_t freeCount = 0;
  };

  PoolThreadCache& localCache();
  void refill(PoolThreadCache& cache, std::size_t cls);
  void drainRemote(PoolThreadCache& cache);
  void stashInMagazine(PoolThreadCache& cache, std::size_t cls,
                       void* block);
  void flushFromMagazine(std::size_t shard, std::size_t cls, void** blocks,
                         std::size_t count);
  // That (shard, cls) depot's lock must be held by the caller.
  void carveChunk(std::size_t shard, std::size_t cls);
  void retireCache(PoolThreadCache* cache);

  Depot depots_[kNumDepotShards][kNumClasses];

  SpinLock cacheLock_;
  std::vector<std::unique_ptr<PoolThreadCache>> caches_;
  PoolThreadCache* inactiveHead_ = nullptr;

  SpinLock chunkLock_;
  std::vector<void*> chunks_;
  std::atomic<std::size_t> reservedBytes_{0};

  std::atomic<bool> poison_;
};

}  // namespace ats
