#pragma once

#include "deps/dependency_system.hpp"
#include "deps/object_table.hpp"

namespace ats {

/// The paper's §2 wait-free Atomic State Machine.  Every transition is a
/// single RMW — no access ever takes a lock or spins on another thread.
///
/// Per object the writes form a registration-order chain; readers hang
/// off the write they follow (or run immediately when no write precedes
/// them).  Each access has up to two preconditions, counted into its
/// task's pendingDeps:
///
///   * write -> write edge: registration parks the new write in the
///     predecessor's `successor` slot and fetch_or's kHasSuccessor into
///     its state; completion fetch_or's kCompleted and checks
///     kHasSuccessor in the returned bits.  The total order on that
///     state word means exactly one side resolves the edge.
///   * write -> readers: a reader CASes itself onto the list packed into
///     the predecessor write's state word; the completion fetch_or of
///     kCompleted atomically closes that list and collects everything
///     attached.  A reader whose CAS observes kCompleted resolves itself
///     — again exactly one side acts per reader.
///   * readers -> write (the read group): readers count themselves into
///     the group of the write they follow; the next write closes the
///     group by fetch_add'ing ReadGroup::kClosedBias.  Either the group
///     was already drained (resolved at close) or the reader whose
///     fetch_sub lands on exactly kClosedBias resolves it.
class WaitFreeAsmDeps final : public DependencySystem {
 public:
  explicit WaitFreeAsmDeps(ReadySink sink) : DependencySystem(sink) {}

  void registerTask(DepTask* task, const Access* accesses,
                    std::size_t count, std::size_t cpu) override;
  void release(DepTask* task, std::size_t cpu) override;
  void reset() override;

  const char* name() const override { return "waitfree_asm"; }

 private:
  /// Per-object ASM anchor.  Only touched on the (per object,
  /// serialized) registration path and by the quiescent reset; the
  /// release path works purely through pointers the nodes carry.
  /// ReadGroup is raw storage (see dep_task.hpp) and the root group has
  /// no registering write to arm it, so the constructor must.
  struct ObjectAsm {
    AccessNode* lastWrite = nullptr;
    ReadGroup rootGroup;

    ObjectAsm() {
      rootGroup.pending.store(0, std::memory_order_relaxed);
      rootGroup.closingWrite.store(nullptr, std::memory_order_relaxed);
      rootGroup.attachedRegistrations = 0;
    }
  };

  /// Both return how many of the node's preconditions resolved during
  /// registration, so registerTask can batch them into one guard drop.
  std::int32_t registerRead(ObjectAsm& obj, AccessNode* node);
  std::int32_t registerWrite(ObjectAsm& obj, AccessNode* node);

  ObjectTable<ObjectAsm> objects_;
};

}  // namespace ats
