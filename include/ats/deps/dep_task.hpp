#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace ats {

struct DepTask;

/// The readers between two writes on one object (or before the first
/// write: the object's root group).  The next write "closes" the group
/// by adding `kClosedBias` plus the attached-reader count, and parks
/// itself in `closingWrite`; whoever moves `pending` to exactly
/// `kClosedBias` last-reader-out resolves that write's group
/// precondition.  Embedded in every write access node, so a group lives
/// exactly as long as the task that owns the preceding write.
///
/// Readers contribute to `pending` two ways: one fetch_add at
/// registration when they resolved themselves (no write to attach to, or
/// it already completed), or — for readers attached to the preceding
/// write's list — a plain `attachedRegistrations` increment that the
/// closing write folds into its bias add.  Registration on one object is
/// serialized (the sibling-task rule), so the plain field never races;
/// this is what keeps an attached reader's registration at a single RMW.
/// Every reader fetch_subs 1 at completion, so `pending` may go negative
/// (down to -attachedRegistrations) before the close.
/// NOTE (allocation fast path): ReadGroup and AccessNode are RAW
/// storage — no default member initializers.  Descriptors are allocated
/// per spawn under eager reclamation, and zeroing eight embedded access
/// nodes per task would dominate the §2 round-trip cost; instead, every
/// field is written by the registration path before anything reads it
/// (registerWrite re-arms `succGroup`, readers set their links before
/// attaching, the fine-grained queue links are set under the object
/// lock).  Containers embedding a ReadGroup that is NOT re-armed by a
/// registration (the object table's root group) must initialize it
/// themselves.
struct ReadGroup {
  static constexpr std::int64_t kClosedBias = std::int64_t{1} << 32;

  std::atomic<std::int64_t> pending;
  std::atomic<struct AccessNode*> closingWrite;
  std::int64_t attachedRegistrations;
};

/// One registered access in an object's dependency chain.  The wait-free
/// ASM drives the atomic `state`/`successor` fields; the fine-grained
/// locking fallback uses the `prevQ`/`nextQ` intrusive queue links under
/// its per-object lock.  Both embed their per-access bookkeeping here so
/// release never allocates or looks anything up.
struct AccessNode {
  /// Wait-free ASM packed state word for writes: two low flag bits plus
  /// the head of the pending-reader list in the pointer bits, so one
  /// fetch_or of kCompleted at release atomically (a) marks the write
  /// done, (b) closes and collects the reader list, and (c) reports
  /// whether a successor write is linked.
  static constexpr std::uintptr_t kCompleted = 1;     ///< owner finished
  static constexpr std::uintptr_t kHasSuccessor = 2;  ///< write linked
  static constexpr std::uintptr_t kFlagMask = kCompleted | kHasSuccessor;

  DepTask* task;
  void* object;
  bool read;

  std::atomic<std::uintptr_t> state;

  /// Writes: the single successor write waiting on our completion.
  std::atomic<AccessNode*> successor;

  /// Reads: our link in the predecessor write's packed reader list.
  AccessNode* nextReader;

  /// Reads: the group this access counted itself into at registration.
  ReadGroup* joinedGroup;

  /// Reads: the task owning `joinedGroup` (nullptr for an object's root
  /// group, which lives in the table entry).  The reader holds one
  /// reference on it from registration until its release's fetch_sub,
  /// so the group's storage survives every possible drain order under
  /// eager descriptor reclamation.
  DepTask* groupOwner;

  /// Writes: the group for readers registered after this access.
  ReadGroup succGroup;

  /// Fine-grained-locks implementation: per-object FIFO queue links and
  /// the entry the node was queued in, all guarded by that object's lock.
  AccessNode* prevQ;
  AccessNode* nextQ;
  void* homeEntry;
  bool queueSatisfied;
};

/// Per-task accesses are fixed-capacity so a task descriptor is one flat
/// allocation (the §4 pool-allocator PR depends on that).
inline constexpr std::size_t kMaxAccessesPerTask = 8;

/// The dependency-facing part of a task descriptor.  `runtime/task.hpp`'s
/// Task derives from this; the deps layer only ever sees DepTask*, which
/// keeps it below the runtime layer in the include order.
struct DepTask {
  /// Unresolved preconditions + one creation guard.  Reads contribute one
  /// precondition (their chain edge); writes contribute two (chain edge +
  /// read-group drain).  The task is handed to the ready sink by whoever
  /// moves this to zero.
  std::atomic<std::int32_t> pendingDeps{0};

  /// Eager-reclamation reference count.  The runtime arms it with one
  /// "execution" reference at allocation; the wait-free ASM arms two
  /// more per WRITE access during registration (before the task is
  /// published anywhere, so a plain load+store suffices — references
  /// are never added after publication): a lastWrite reference, dropped
  /// by the superseding write's registration or quiescent reset, and a
  /// group reference for the write's own read group, dropped by exactly
  /// one of {the closing write that finds the group already drained,
  /// the reader landing the drain on kClosedBias, reset}.  Readers take
  /// NO references — an unclosed group's owner is pinned by its
  /// lastWrite reference, a closed one by the group reference.  Whoever
  /// drops the last reference runs `onLastRef`, which the runtime
  /// points at its allocator — so a descriptor is reclaimed the instant
  /// nothing can reach it, without waiting for a taskwait.  With no
  /// hook installed (deps-layer unit tests on stack tasks) reaching
  /// zero is a no-op.
  std::atomic<std::int32_t> refCount{0};
  void (*onLastRef)(DepTask& task) = nullptr;

  /// acq_rel: the releasing thread's writes to the descriptor happen
  /// before whoever reclaims it reuses the storage.  Last-owner
  /// shortcut (the resolveOne idiom): observing exactly our own n means
  /// no other reference exists and none can appear — references are
  /// only ever created on the pre-publication registration path — so
  /// the RMW is skippable.
  void dropRef(std::int32_t n = 1) {
    if (refCount.load(std::memory_order_acquire) == n) {
      refCount.store(0, std::memory_order_relaxed);
      if (onLastRef != nullptr) onLastRef(*this);
      return;
    }
    const std::int32_t before =
        refCount.fetch_sub(n, std::memory_order_acq_rel);
    assert(before >= n && "dropRef without a matching armed reference");
    if (before == n && onLastRef != nullptr) onLastRef(*this);
  }

  std::size_t numAccesses = 0;
  AccessNode accesses[kMaxAccessesPerTask];
};

}  // namespace ats
