#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ats {

struct DepTask;

/// The readers between two writes on one object (or before the first
/// write: the object's root group).  The next write "closes" the group
/// by adding `kClosedBias` plus the attached-reader count, and parks
/// itself in `closingWrite`; whoever moves `pending` to exactly
/// `kClosedBias` last-reader-out resolves that write's group
/// precondition.  Embedded in every write access node, so a group lives
/// exactly as long as the task that owns the preceding write.
///
/// Readers contribute to `pending` two ways: one fetch_add at
/// registration when they resolved themselves (no write to attach to, or
/// it already completed), or — for readers attached to the preceding
/// write's list — a plain `attachedRegistrations` increment that the
/// closing write folds into its bias add.  Registration on one object is
/// serialized (the sibling-task rule), so the plain field never races;
/// this is what keeps an attached reader's registration at a single RMW.
/// Every reader fetch_subs 1 at completion, so `pending` may go negative
/// (down to -attachedRegistrations) before the close.
struct ReadGroup {
  static constexpr std::int64_t kClosedBias = std::int64_t{1} << 32;

  std::atomic<std::int64_t> pending{0};
  std::atomic<struct AccessNode*> closingWrite{nullptr};
  std::int64_t attachedRegistrations = 0;
};

/// One registered access in an object's dependency chain.  The wait-free
/// ASM drives the atomic `state`/`successor` fields; the fine-grained
/// locking fallback uses the `prevQ`/`nextQ` intrusive queue links under
/// its per-object lock.  Both embed their per-access bookkeeping here so
/// release never allocates or looks anything up.
struct AccessNode {
  /// Wait-free ASM packed state word for writes: two low flag bits plus
  /// the head of the pending-reader list in the pointer bits, so one
  /// fetch_or of kCompleted at release atomically (a) marks the write
  /// done, (b) closes and collects the reader list, and (c) reports
  /// whether a successor write is linked.
  static constexpr std::uintptr_t kCompleted = 1;     ///< owner finished
  static constexpr std::uintptr_t kHasSuccessor = 2;  ///< write linked
  static constexpr std::uintptr_t kFlagMask = kCompleted | kHasSuccessor;

  DepTask* task = nullptr;
  void* object = nullptr;
  bool read = false;

  std::atomic<std::uintptr_t> state{0};

  /// Writes: the single successor write waiting on our completion.
  std::atomic<AccessNode*> successor{nullptr};

  /// Reads: our link in the predecessor write's packed reader list.
  AccessNode* nextReader = nullptr;

  /// Reads: the group this access counted itself into at registration.
  ReadGroup* joinedGroup = nullptr;

  /// Writes: the group for readers registered after this access.
  ReadGroup succGroup;

  /// Fine-grained-locks implementation: per-object FIFO queue links and
  /// the entry the node was queued in, all guarded by that object's lock.
  AccessNode* prevQ = nullptr;
  AccessNode* nextQ = nullptr;
  void* homeEntry = nullptr;
  bool queueSatisfied = false;
};

/// Per-task accesses are fixed-capacity so a task descriptor is one flat
/// allocation (the §4 pool-allocator PR depends on that).
inline constexpr std::size_t kMaxAccessesPerTask = 8;

/// The dependency-facing part of a task descriptor.  `runtime/task.hpp`'s
/// Task derives from this; the deps layer only ever sees DepTask*, which
/// keeps it below the runtime layer in the include order.
struct DepTask {
  /// Unresolved preconditions + one creation guard.  Reads contribute one
  /// precondition (their chain edge); writes contribute two (chain edge +
  /// read-group drain).  The task is handed to the ready sink by whoever
  /// moves this to zero.
  std::atomic<std::int32_t> pendingDeps{0};

  std::size_t numAccesses = 0;
  AccessNode accesses[kMaxAccessesPerTask];
};

}  // namespace ats
