#pragma once

#include "deps/dependency_system.hpp"
#include "deps/object_table.hpp"

namespace ats {

/// The legacy lock-per-object dependency system the paper's ASM replaced
/// (§2's baseline).  Each object keeps a FIFO queue of its uncompleted
/// accesses behind a spinlock; registration appends and tests
/// eligibility, completion unlinks and rescans the head for newly
/// eligible accesses.  Eligibility is the same semantics the ASM
/// implements: a read runs when no write is queued ahead of it, a write
/// runs when it is alone at the head.
///
/// The comparison against WaitFreeAsmDeps is honest by construction: both
/// traffic in the same AccessNode fields, the same sharded object table,
/// and the same pendingDeps/ready-sink protocol — the only thing that
/// differs is lock-and-scan versus wait-free state transitions.
class FineGrainedLocksDeps final : public DependencySystem {
 public:
  explicit FineGrainedLocksDeps(ReadySink sink)
      : DependencySystem(sink) {}

  void registerTask(DepTask* task, const Access* accesses,
                    std::size_t count, std::size_t cpu) override;
  void release(DepTask* task, std::size_t cpu) override;
  void reset() override;

  const char* name() const override { return "fine_grained_locks"; }

 private:
  struct ObjectLocked {
    SpinLock lock;
    AccessNode* head = nullptr;
    AccessNode* tail = nullptr;
    std::size_t queuedWrites = 0;
  };

  ObjectTable<ObjectLocked> objects_;
};

}  // namespace ats
