#pragma once

namespace ats {

/// The three OmpSs/OpenMP access modes a task can declare on an object.
/// Dependency-wise Out and InOut are identical (both order against every
/// other access); the distinction is kept because the apps layer will
/// want it for array-region accesses later.
enum class AccessMode : unsigned char {
  In,     ///< read — concurrent with other reads, after the last write
  Out,    ///< write — exclusive
  InOut,  ///< read-modify-write — exclusive
};

/// One declared access: the address identifies the dependency object
/// (byte-granularity, like the `in(x)` clauses of the paper's listings).
struct Access {
  void* object;
  AccessMode mode;

  bool isRead() const { return mode == AccessMode::In; }
};

/// Clause builders so spawn sites read like the pragmas they reproduce:
/// `rt.spawn({in(x), inout(y)}, [&]{ ... })`.
template <typename T>
Access in(T& object) {
  return Access{&object, AccessMode::In};
}

template <typename T>
Access out(T& object) {
  return Access{&object, AccessMode::Out};
}

template <typename T>
Access inout(T& object) {
  return Access{&object, AccessMode::InOut};
}

}  // namespace ats
