#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "locks/locks.hpp"

namespace ats {

/// Address -> per-object dependency state, sharded so registrations from
/// different spawners on different objects do not serialize on one lock.
/// Lookups happen only on the registration path; release never touches
/// the table (every access node carries direct pointers to what it must
/// poke), which is where the wait-free claim for release lives.
///
/// Entries are created on first use and live for the table's lifetime —
/// the dependency systems' reset() clears entry *fields* at quiescence
/// but deliberately keeps the allocations warm for reused addresses.
/// A workload that touches an unbounded stream of fresh addresses
/// therefore grows the table monotonically; quiescent compaction is a
/// ROADMAP item for the apps layer.
template <typename Entry>
class ObjectTable {
 public:
  Entry& lookupOrCreate(void* object) {
    Shard& shard = shards_[shardOf(object)];
    std::lock_guard<SpinLock> guard(shard.lock);
    std::unique_ptr<Entry>& slot = shard.map[object];
    if (!slot) slot = std::make_unique<Entry>();
    return *slot;
  }

  /// Visit every entry.  Only called at quiescence (taskwait reset), but
  /// takes the shard locks anyway so a misuse shows up as contention, not
  /// corruption.
  template <typename Fn>
  void forEach(Fn&& fn) {
    for (Shard& shard : shards_) {
      std::lock_guard<SpinLock> guard(shard.lock);
      for (auto& [object, entry] : shard.map) fn(*entry);
    }
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t shardOf(void* object) {
    auto bits = reinterpret_cast<std::uintptr_t>(object);
    // Mix the middle bits: heap addresses share their low (alignment) and
    // high (region) bits.
    return static_cast<std::size_t>((bits >> 4) ^ (bits >> 12)) %
           kShards;
  }

  struct Shard {
    SpinLock lock;
    std::unordered_map<void*, std::unique_ptr<Entry>> map;
  };

  Shard shards_[kShards];
};

}  // namespace ats
