#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/failpoint.hpp"
#include "common/fatal.hpp"
#include "memory/stable_pool.hpp"

namespace ats {

namespace object_table_detail {

/// Epoch values are handed out from one process-wide monotonic source,
/// so an epoch identifies one table GENERATION uniquely across every
/// table (and table instantiation type) that ever exists in the
/// process.  A TLS cache entry stamped with a dead generation can
/// therefore never be mistaken for a live one — not after a reset, not
/// after a table is destroyed and a new one lands on the same heap
/// address.
inline std::atomic<std::uint64_t> gEpochSource{1};

/// Fibonacci multiply-shift over the middle address bits (heap
/// addresses share their low alignment bits and high region bits).
/// Consumers index with the TOP bits of the result — those are the
/// well-mixed ones.
inline std::uint64_t mixAddress(std::uintptr_t bits) {
  return (static_cast<std::uint64_t>(bits) >> 4) * 0x9E3779B97F4A7C15ull;
}

inline constexpr std::size_t kCacheSlotsLog2 = 9;
inline constexpr std::size_t kCacheSlots = std::size_t{1} << kCacheSlotsLog2;

struct CacheSlot {
  std::uint64_t epoch = 0;  ///< 0 never matches (epochs start at 1)
  std::uintptr_t key = 0;
  void* entry = nullptr;
};

/// One direct-mapped lookup cache per thread, shared by every table in
/// the process (the epoch stamp disambiguates tables).  Hit/miss
/// counters are per-thread plain increments — effectively free next to
/// the TLS line the lookup already touches — and give tests and debug
/// dumps an exact, race-free view of the calling thread's hit rate.
struct ThreadCache {
  CacheSlot slots[kCacheSlots];
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

inline ThreadCache& threadCache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace object_table_detail

/// The calling thread's TLS-cache counters (aggregated over all tables;
/// see ThreadCache).  Exposed for tests and stats dumps.
struct ObjectTableCacheCounters {
  std::uint64_t hits;
  std::uint64_t misses;
};

inline ObjectTableCacheCounters objectTableThreadCacheCounters() {
  const auto& cache = object_table_detail::threadCache();
  return {cache.hits, cache.misses};
}

/// Address -> per-object dependency state, with LOCK-FREE lookups: the
/// registration path — up to kMaxAccessesPerTask lookups per spawn —
/// was the last lock the spawn hot path paid (the seed design probed a
/// spinlocked unordered_map shard per access).
///
/// Three tiers, fastest first:
///
///   1. TLS entry cache: a per-thread direct-mapped address->Entry*
///      cache, stamped with the table's epoch.  Steady-state
///      re-registration of a known address (the apps layer re-registers
///      the same block addresses every iteration) hits here and touches
///      no shared mutable line at all — the spawn-side analogue of the
///      SPSC cached-index trick.  `invalidateThreadCaches()` (called by
///      the dependency systems' quiescent reset) bumps the epoch, which
///      invalidates every thread's entries for this table at once.
///   2. Lock-free probe: open-addressed segments probed with acquire
///      loads — no RMW, no lock, for any address already in the table.
///   3. CAS-claim insert: first touch of an address placement-news an
///      Entry node from a StablePool (spinlocked, but only this cold
///      tier ever takes it) and publishes it with one CAS.  Losing a
///      same-address race recycles the unpublished node and adopts the
///      winner's — every caller pins exactly one Entry per address.
///
/// Growth appends segments of doubling size instead of rehashing, so a
/// published Entry* is STABLE for the table's lifetime — which is what
/// makes tier 1 sound, and what the dependency systems already relied
/// on (reset() clears entry fields at quiescence but keeps the
/// allocations warm for reused addresses; FineGrainedLocksDeps stores
/// entry pointers in access nodes).  Probe sequences are deterministic
/// and slot occupancy is monotone (slots fill, never empty), so an
/// empty slot proves the key is not later in that segment's window and
/// a full window proves it can only be in a later segment.
///
/// A workload touching an unbounded stream of fresh addresses still
/// grows the table monotonically; quiescent compaction remains a
/// ROADMAP item (the epoch machinery here is the hook it will need).
template <typename Entry>
class ObjectTable {
 public:
  ObjectTable()
      : pool_(sizeof(Node), /*blockAlign=*/64),
        epoch_(object_table_detail::gEpochSource.fetch_add(
            1, std::memory_order_relaxed)) {
    for (auto& segment : segments_)
      segment.store(nullptr, std::memory_order_relaxed);
    segments_[0].store(new Segment(kFirstSegmentSlots),
                       std::memory_order_release);
  }

  ~ObjectTable() {
    for (auto& slot : segments_) {
      Segment* segment = slot.load(std::memory_order_acquire);
      if (segment == nullptr) continue;
      for (std::size_t i = 0; i <= segment->mask; ++i) {
        Node* node = segment->slots[i].load(std::memory_order_acquire);
        if (node != nullptr) node->~Node();
      }
      delete segment;
    }
    // Node storage itself goes with pool_.
  }

  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;

  Entry& lookupOrCreate(void* object) {
    namespace detail = object_table_detail;
    const auto bits = reinterpret_cast<std::uintptr_t>(object);
    const std::uint64_t mixed = detail::mixAddress(bits);
    // Relaxed epoch load: the stamp only has to be current with respect
    // to the last quiescent reset, and quiescence already orders this
    // thread after it (the runtime's taskwait/ready hand-off chain).
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    detail::ThreadCache& cache = detail::threadCache();
    detail::CacheSlot& slot =
        cache.slots[mixed >> (64 - detail::kCacheSlotsLog2)];
    if (slot.epoch == epoch && slot.key == bits) {
      // No acquire needed: this thread published or acquire-loaded the
      // entry when it filled the slot, so it already happens-after the
      // entry's construction.
      ++cache.hits;
      return *static_cast<Entry*>(slot.entry);
    }
    ++cache.misses;
    Entry& entry = lookupOrCreateShared(object, mixed);
    slot.epoch = epoch;
    slot.key = bits;
    slot.entry = &entry;
    return entry;
  }

  /// Visit every entry.  Lock-free acquire scans; only sound at
  /// quiescence (the dependency systems call it from reset(), when no
  /// registration is concurrent), like the mutation contract on the
  /// entries themselves.
  template <typename Fn>
  void forEach(Fn&& fn) {
    for (auto& slot : segments_) {
      Segment* segment = slot.load(std::memory_order_acquire);
      if (segment == nullptr) continue;
      for (std::size_t i = 0; i <= segment->mask; ++i) {
        Node* node = segment->slots[i].load(std::memory_order_acquire);
        if (node != nullptr) fn(node->entry);
      }
    }
  }

  /// Move this table to a fresh epoch, orphaning every TLS-cached entry
  /// stamped with the old one.  Entries themselves survive (pointers
  /// stay valid and warm); only the per-thread caches start cold.
  /// Caller guarantees quiescence, same as forEach.
  void invalidateThreadCaches() {
    epoch_.store(object_table_detail::gEpochSource.fetch_add(
                     1, std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  /// Published entries (exact at quiescence; a mid-insert reading may
  /// trail by in-flight CASes).
  std::size_t entryCount() const {
    return entryCount_.load(std::memory_order_relaxed);
  }

  /// Allocated probe segments (1 until the first window overflow).
  std::size_t segmentCount() const {
    std::size_t count = 0;
    for (const auto& slot : segments_) {
      if (slot.load(std::memory_order_acquire) != nullptr) ++count;
    }
    return count;
  }

 private:
  struct Node {
    explicit Node(void* obj) : object(obj) {}

    void* const object;
    Entry entry;
  };

  struct Segment {
    explicit Segment(std::size_t slotCount)
        : mask(slotCount - 1),
          shift(64 - std::countr_zero(slotCount)),
          slots(std::make_unique<std::atomic<Node*>[]>(slotCount)) {}

    const std::size_t mask;
    const int shift;  ///< mixed >> shift = top log2(slotCount) bits
    const std::unique_ptr<std::atomic<Node*>[]> slots;
  };

  static constexpr std::size_t kFirstSegmentSlots = 1024;
  static constexpr std::size_t kMaxSegments = 24;  // 1024 << 23 slots
  static constexpr std::size_t kProbeWindow = 16;

  Entry& lookupOrCreateShared(void* object, std::uint64_t mixed) {
    // Failpoint: the cold first-touch/insert-race path (TLS tier-1
    // misses land here).  Delay mode widens the CAS-claim race window —
    // the same-address adoption drill; a throw would unwind through a
    // half-registered task, so throw mode is off-limits here.
    ATS_FAILPOINT(table_insert);
    Node* candidate = nullptr;
    for (std::size_t si = 0; si < kMaxSegments; ++si) {
      Segment& segment = segmentAt(si);
      const auto base = static_cast<std::size_t>(mixed >> segment.shift);
      for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
        std::atomic<Node*>& bucket =
            segment.slots[(base + probe) & segment.mask];
        Node* node = bucket.load(std::memory_order_acquire);
        if (node == nullptr) {
          if (candidate == nullptr) {
            candidate = ::new (pool_.allocate()) Node(object);
          }
          if (bucket.compare_exchange_strong(node, candidate,
                                             std::memory_order_release,
                                             std::memory_order_acquire)) {
            entryCount_.fetch_add(1, std::memory_order_relaxed);
            return candidate->entry;
          }
          // CAS failure reloaded `node` with the racing winner; fall
          // through to the key check — a same-address race adopts it.
        }
        if (node->object == object) {
          if (candidate != nullptr) {
            candidate->~Node();
            pool_.recycle(candidate);
          }
          return node->entry;
        }
      }
      // Window full of other keys in this segment — the key, if
      // present, can only live in a later (larger) segment.
    }
    fatal("ats::ObjectTable: exhausted %zu doubling segments — "
          "unreachably many distinct dependency objects",
          kMaxSegments);
  }

  Segment& segmentAt(std::size_t si) {
    Segment* segment = segments_[si].load(std::memory_order_acquire);
    if (segment != nullptr) return *segment;
    auto* fresh = new Segment(kFirstSegmentSlots << si);
    Segment* expected = nullptr;
    if (segments_[si].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return *fresh;
    }
    delete fresh;  // lost the allocation race; adopt the winner's
    return *expected;
  }

  StablePool pool_;
  std::atomic<std::uint64_t> epoch_;
  std::atomic<std::size_t> entryCount_{0};
  std::atomic<Segment*> segments_[kMaxSegments];
};

}  // namespace ats
