#pragma once

#include <cstddef>
#include <memory>

#include "deps/access.hpp"
#include "deps/dep_task.hpp"

namespace ats {

/// Which dependency subsystem the runtime uses (§2).  Declared here (not
/// in runtime_config.hpp) so the deps layer can key its factory off it;
/// the runtime layer re-exports it by including this header.
enum class DepsKind {
  FineGrainedLocks,  ///< the legacy lock-per-object implementation
  WaitFreeAsm,       ///< the paper's wait-free Atomic State Machine
};

/// Where tasks go once their last dependency resolves.  `cpu` is the
/// logical CPU slot of the thread on which the resolution happened, so
/// the runtime can route the task into that CPU's add-buffer.
struct ReadySink {
  void (*fn)(void* ctx, DepTask* task, std::size_t cpu) = nullptr;
  void* ctx = nullptr;

  void ready(DepTask* task, std::size_t cpu) const { fn(ctx, task, cpu); }
};

/// The §2 dependency subsystem contract both implementations meet.
///
/// Concurrency model (the OmpSs sibling-task rule the paper's runtime
/// also relies on): registrations for a given object are serialized —
/// sibling tasks are created in program order by their creator thread —
/// while releases run concurrently with everything, from whichever worker
/// finishes a predecessor.  Register/release races on one object are
/// exactly what the wait-free ASM's transitions arbitrate.
class DependencySystem {
 public:
  explicit DependencySystem(ReadySink sink) : sink_(sink) {}
  virtual ~DependencySystem() = default;

  /// Register `task`'s declared accesses and arm its pendingDeps counter.
  /// Calls the ready sink (possibly before returning, possibly from
  /// another thread's release) exactly once, when the last precondition
  /// resolves.  A task must not declare the same object twice.
  virtual void registerTask(DepTask* task, const Access* accesses,
                            std::size_t count, std::size_t cpu) = 0;

  /// Release every access of a completed task, resolving successor
  /// preconditions; newly-ready tasks surface through the sink with the
  /// caller's `cpu`.  Called exactly once per task, after its body RAN,
  /// FAILED (threw), or was SKIPPED by a cancellation drain — an
  /// implementation must never assume the body executed or infer
  /// anything from its side effects (failure-domain audit: both
  /// implementations only walk access nodes the REGISTRATION wrote, so
  /// released-but-never-run tasks are indistinguishable from ran ones
  /// here, which is exactly what the skip-don't-run drain relies on).
  virtual void release(DepTask* task, std::size_t cpu) = 0;

  /// Quiescent-state cleanup: forget all chains so task descriptors can
  /// be recycled.  Caller guarantees no task is in flight and no
  /// registration is concurrent (the runtime calls this from taskwait).
  virtual void reset() = 0;

  virtual const char* name() const = 0;

 protected:
  /// One precondition of `task` resolved; ready it on reaching zero.
  /// pendingDeps counts outstanding preconditions, one of which is the
  /// caller's; observing 1 therefore means the caller owns the last and
  /// nobody else can touch the counter — skip the RMW.  The acquire
  /// syncs with the acq_rel chain of earlier resolvers, so the readied
  /// body still sees every predecessor's effects.
  void resolveOne(DepTask* task, std::size_t cpu) {
    if (task->pendingDeps.load(std::memory_order_acquire) == 1) {
      task->pendingDeps.store(0, std::memory_order_relaxed);
      sink_.ready(task, cpu);
    } else if (task->pendingDeps.fetch_sub(
                   1, std::memory_order_acq_rel) == 1) {
      sink_.ready(task, cpu);
    }
  }

  /// Drop the creation guard plus the `resolved` preconditions that
  /// registration handled itself, readying the task if that was
  /// everything.  When registration resolved every precondition, no
  /// other thread holds a reference, so the counter is not touched at
  /// all.
  void finishRegistration(DepTask* task, std::int32_t preconditions,
                          std::int32_t resolved, std::size_t cpu) {
    const std::int32_t drop = 1 + resolved;
    if (drop == preconditions) {
      sink_.ready(task, cpu);
    } else if (task->pendingDeps.fetch_sub(
                   drop, std::memory_order_acq_rel) == drop) {
      sink_.ready(task, cpu);
    }
  }

  ReadySink sink_;
};

std::unique_ptr<DependencySystem> makeDependencySystem(DepsKind kind,
                                                       ReadySink sink);

}  // namespace ats
