#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace ats {
namespace {

RuntimeConfig testConfig(DepsKind deps, SchedulerKind sched,
                         std::size_t workers, bool usePool = true) {
  RuntimeConfig config = optimizedConfig(
      makeTopology(MachinePreset::Host, workers));
  config.deps = deps;
  config.scheduler = sched;
  config.usePoolAllocator = usePool;
  return config;
}

std::string kindName(DepsKind kind) {
  return kind == DepsKind::WaitFreeAsm ? "WaitFreeAsm" : "FineGrainedLocks";
}

std::string schedName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::CentralMutex: return "CentralMutex";
    case SchedulerKind::PTLockCentral: return "PTLockCentral";
    case SchedulerKind::SyncDelegation: return "SyncDelegation";
    case SchedulerKind::WorkStealing: return "WorkStealing";
  }
  return "unknown";
}

using Matrix = std::tuple<DepsKind, SchedulerKind, bool>;

/// The full deps x scheduler x allocator matrix under 8 worker threads —
/// the ISSUE's conservation shape, run under the same TSan job as
/// everything else.  The allocator dimension reruns every shape with
/// `usePoolAllocator` on and off, so both §4 paths keep the exactly-once
/// and ordering contracts.
class RuntimeMatrixTest : public ::testing::TestWithParam<Matrix> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, RuntimeMatrixTest,
    ::testing::Combine(::testing::Values(DepsKind::WaitFreeAsm,
                                         DepsKind::FineGrainedLocks),
                       ::testing::Values(SchedulerKind::SyncDelegation,
                                         SchedulerKind::PTLockCentral,
                                         SchedulerKind::CentralMutex,
                                         SchedulerKind::WorkStealing),
                       ::testing::Bool()),
    [](const auto& info) {
      return kindName(std::get<0>(info.param)) + "_" +
             schedName(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_PoolAlloc" : "_SystemAlloc");
    });

TEST_P(RuntimeMatrixTest, SpawnTaskwaitConservesEveryTaskExactlyOnce) {
  constexpr int kTasks = 2000;
  const auto [deps, sched, usePool] = GetParam();
  Runtime rt(testConfig(deps, sched, 8, usePool));

  // Two batches through the same runtime so the second one exercises
  // descriptor recycling and dependency-chain reset.
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<std::atomic<int>> ran(kTasks);
    std::atomic<int> total{0};
    for (int i = 0; i < kTasks; ++i) {
      rt.spawn({}, [&ran, &total, i] {
        ran[static_cast<std::size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt.taskwait();
    EXPECT_EQ(total.load(), kTasks) << "batch " << batch;
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
          << "task " << i << " in batch " << batch
          << " ran zero or multiple times";
    }
  }
}

TEST_P(RuntimeMatrixTest, InoutChainObservesStrictlyIncreasingValues) {
  constexpr int kLinks = 300;
  const auto [deps, sched, usePool] = GetParam();
  Runtime rt(testConfig(deps, sched, 8, usePool));

  // The counter is deliberately NOT atomic: only a correct inout chain
  // makes these bodies mutually exclusive and ordered, and TSan will
  // flag any overlap the dependency system lets through.
  long long counter = 0;
  std::vector<long long> observed(kLinks, -1);
  for (int i = 0; i < kLinks; ++i) {
    rt.spawn({inout(counter)}, [&counter, &observed, i] {
      observed[static_cast<std::size_t>(i)] = counter;
      ++counter;
    });
  }
  rt.taskwait();

  EXPECT_EQ(counter, kLinks);
  for (int i = 0; i < kLinks; ++i) {
    ASSERT_EQ(observed[static_cast<std::size_t>(i)], i)
        << "chain link " << i << " ran out of order";
  }
}

TEST_P(RuntimeMatrixTest, ReadFanNeverObservesTornWriter) {
  constexpr int kRounds = 40;
  constexpr int kReadersPerRound = 8;
  const auto [deps, sched, usePool] = GetParam();
  Runtime rt(testConfig(deps, sched, 8, usePool));

  // The writer bumps both halves non-atomically; a reader overlapping
  // the writer (or another round's readers overlapping a later writer)
  // sees a != b — and TSan sees a plain-memory race.
  struct Pair {
    long long a = 0;
    long long b = 0;
  } pair;
  std::atomic<int> torn{0};
  std::atomic<int> reads{0};
  for (int round = 0; round < kRounds; ++round) {
    rt.spawn({inout(pair)}, [&pair] {
      ++pair.a;
      ++pair.b;
    });
    for (int r = 0; r < kReadersPerRound; ++r) {
      rt.spawn({in(pair)}, [&pair, &torn, &reads] {
        if (pair.a != pair.b) torn.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  rt.taskwait();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(reads.load(), kRounds * kReadersPerRound);
  EXPECT_EQ(pair.a, kRounds);
  EXPECT_EQ(pair.b, kRounds);
}

/// The scheduler-tuning dimension of the ISSUE-5 batched-serve work:
/// every PolicyKind crossed with batch-vs-serve-one delegation, on the
/// optimized SyncDelegation/WaitFreeAsm runtime under 8 workers.  The
/// conservation and ordering laws must be knob-independent.
using Tuning = std::tuple<PolicyKind, bool>;

class SchedTuningMatrixTest : public ::testing::TestWithParam<Tuning> {};

INSTANTIATE_TEST_SUITE_P(
    Knobs, SchedTuningMatrixTest,
    ::testing::Combine(::testing::Values(PolicyKind::Fifo, PolicyKind::Lifo,
                                         PolicyKind::NumaFifo),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case PolicyKind::Fifo: name = "Fifo"; break;
        case PolicyKind::Lifo: name = "Lifo"; break;
        case PolicyKind::NumaFifo: name = "NumaFifo"; break;
      }
      return name + (std::get<1>(info.param) ? "_BatchServe" : "_ServeOne");
    });

TEST_P(SchedTuningMatrixTest, SpawnTaskwaitConservesEveryTaskExactlyOnce) {
  constexpr int kTasks = 2000;
  const auto [policy, batchServe] = GetParam();
  RuntimeConfig config =
      testConfig(DepsKind::WaitFreeAsm, SchedulerKind::SyncDelegation, 8);
  config.policy = policy;
  config.schedBatchServe = batchServe;
  // Small buffers so the overflow help-drain path runs under every knob.
  config.spscCapacity = 32;
  Runtime rt(config);

  std::vector<std::atomic<int>> ran(kTasks);
  std::atomic<int> total{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&ran, &total, i] {
      ran[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  rt.taskwait();
  EXPECT_EQ(total.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
        << "task " << i << " ran zero or multiple times";
  }
}

TEST_P(SchedTuningMatrixTest, InoutChainStaysStrictlyOrdered) {
  constexpr int kLinks = 300;
  const auto [policy, batchServe] = GetParam();
  RuntimeConfig config =
      testConfig(DepsKind::WaitFreeAsm, SchedulerKind::SyncDelegation, 8);
  config.policy = policy;
  config.schedBatchServe = batchServe;
  Runtime rt(config);

  // Dependency order must override ANY ready-queue policy: the chain
  // admits one ready task at a time, so even LIFO cannot reorder it —
  // and TSan would flag overlap if a policy handed a task out twice.
  long long counter = 0;
  std::vector<long long> observed(kLinks, -1);
  for (int i = 0; i < kLinks; ++i) {
    rt.spawn({inout(counter)}, [&counter, &observed, i] {
      observed[static_cast<std::size_t>(i)] = counter;
      ++counter;
    });
  }
  rt.taskwait();

  EXPECT_EQ(counter, kLinks);
  for (int i = 0; i < kLinks; ++i) {
    ASSERT_EQ(observed[static_cast<std::size_t>(i)], i)
        << "chain link " << i << " ran out of order";
  }
}

/// The NUMA dimension of the ISSUE-7 waiter-locality work: the Rome
/// preset (8 domains at full width, several at 8 workers) crossed with
/// waiter-locality on/off and a plain-vs-NUMA policy, so the grouped
/// serve path and its holder-locality ablation both keep the
/// conservation and ordering laws on a genuinely multi-domain map.
using NumaKnobs = std::tuple<PolicyKind, bool>;

class NumaMatrixTest : public ::testing::TestWithParam<NumaKnobs> {};

INSTANTIATE_TEST_SUITE_P(
    Knobs, NumaMatrixTest,
    ::testing::Combine(::testing::Values(PolicyKind::Fifo,
                                         PolicyKind::NumaFifo),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == PolicyKind::Fifo ? "Fifo" : "NumaFifo";
      return name + (std::get<1>(info.param) ? "_WaiterLocality"
                                             : "_HolderLocality");
    });

TEST_P(NumaMatrixTest, SpawnTaskwaitConservesEveryTaskExactlyOnce) {
  constexpr int kTasks = 2000;
  const auto [policy, waiterLocality] = GetParam();
  RuntimeConfig config = makeRomeConfig(8);
  config.policy = policy;
  config.schedWaiterLocality = waiterLocality;
  // Small buffers so the domain-sharded overflow drain runs constantly.
  config.spscCapacity = 32;
  Runtime rt(config);

  // Two batches so the second exercises descriptor recycling through the
  // domain-sharded pool depots too.
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<std::atomic<int>> ran(kTasks);
    std::atomic<int> total{0};
    for (int i = 0; i < kTasks; ++i) {
      rt.spawn({}, [&ran, &total, i] {
        ran[static_cast<std::size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt.taskwait();
    EXPECT_EQ(total.load(), kTasks) << "batch " << batch;
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
          << "task " << i << " in batch " << batch
          << " ran zero or multiple times";
    }
  }
}

TEST_P(NumaMatrixTest, InoutChainStaysStrictlyOrdered) {
  constexpr int kLinks = 300;
  const auto [policy, waiterLocality] = GetParam();
  RuntimeConfig config = makeRomeConfig(8);
  config.policy = policy;
  config.schedWaiterLocality = waiterLocality;
  Runtime rt(config);

  // Dependency order must survive the domain-grouped serve: a group
  // being answered from its own domain's view must never let a link
  // start before its predecessor's release publishes the chain.
  long long counter = 0;
  std::vector<long long> observed(kLinks, -1);
  for (int i = 0; i < kLinks; ++i) {
    rt.spawn({inout(counter)}, [&counter, &observed, i] {
      observed[static_cast<std::size_t>(i)] = counter;
      ++counter;
    });
  }
  rt.taskwait();

  EXPECT_EQ(counter, kLinks);
  for (int i = 0; i < kLinks; ++i) {
    ASSERT_EQ(observed[static_cast<std::size_t>(i)], i)
        << "chain link " << i << " ran out of order";
  }
}

/// Non-matrix runtime behaviors, default (optimized) configuration.
TEST(RuntimeTest, RawFunctionPointerSpawn) {
  Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 2)));
  std::atomic<int> hits{0};
  auto bump = +[](void* arg) {
    static_cast<std::atomic<int>*>(arg)->fetch_add(1);
  };
  for (int i = 0; i < 100; ++i) rt.spawn({}, bump, &hits);
  rt.taskwait();
  EXPECT_EQ(hits.load(), 100);
}

TEST(RuntimeTest, LargeClosureSpillsToHeapAndStillRuns) {
  Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 2)));
  std::array<long long, 32> payload{};  // 256 bytes: > inline capacity
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<long long>(i);
  static_assert(sizeof(payload) > Task::kInlineClosureBytes);

  long long sum = 0;
  rt.spawn({out(sum)}, [payload, &sum] {
    for (long long v : payload) sum += v;
  });
  rt.taskwait();
  EXPECT_EQ(sum, 31 * 32 / 2);
}

TEST(RuntimeTest, TaskwaitWithNothingSpawnedIsANoOp) {
  Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 2)));
  rt.taskwait();
  rt.taskwait();
}

TEST(RuntimeTest, MixedObjectsRespectCrossObjectJoin) {
  Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 4)));
  long long x = 0, y = 0, joined = -1;
  rt.spawn({out(x)}, [&x] { x = 21; });
  rt.spawn({out(y)}, [&y] { y = 21; });
  rt.spawn({in(x), in(y), out(joined)},
           [&x, &y, &joined] { joined = x + y; });
  rt.taskwait();
  EXPECT_EQ(joined, 42);
}

/// §4 eager reclamation: a spawn-heavy dependency chain with NO taskwait
/// must keep live descriptor memory bounded by the in-flight window —
/// completed descriptors go back to the allocator as soon as the chains
/// can no longer reach them, not at the next quiescent point.  Run for
/// both allocator settings (the refcount protocol is allocator-agnostic).
class EagerReclamationTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Allocators, EagerReclamationTest,
                         ::testing::Bool(), [](const auto& info) {
                           return info.param ? std::string("PoolAlloc")
                                             : std::string("SystemAlloc");
                         });

TEST_P(EagerReclamationTest, NoTaskwaitChainKeepsDescriptorsBounded) {
  constexpr int kWaves = 25;
  constexpr int kTasksPerWave = 400;
  // Post-wave settle target: the final write of the chain stays pinned
  // by the deps layer's lastWrite reference, and a straggler can still
  // be inside its completion path — anything beyond a handful means
  // completed descriptors are accumulating like the old slab did.
  constexpr std::size_t kSettledBound = 4;

  Runtime rt(testConfig(DepsKind::WaitFreeAsm,
                        SchedulerKind::SyncDelegation, 4, GetParam()));
  long long x = 0;
  std::atomic<int> done{0};
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kTasksPerWave; ++i) {
      rt.spawn({inout(x)}, [&x, &done] {
        ++x;
        done.fetch_add(1, std::memory_order_release);
      });
    }
    // Wait for the wave to finish WITHOUT a taskwait, then for the
    // reclamation drops (which trail the done counter) to settle.
    const int target = (wave + 1) * kTasksPerWave;
    while (done.load(std::memory_order_acquire) < target)
      std::this_thread::yield();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (rt.liveDescriptors() > kSettledBound &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    ASSERT_LE(rt.liveDescriptors(), kSettledBound)
        << "wave " << wave << ": completed descriptors are not being "
        << "reclaimed eagerly";
  }

  rt.taskwait();
  EXPECT_EQ(x, kWaves * kTasksPerWave);
  EXPECT_EQ(rt.liveDescriptors(), 0u)
      << "taskwait quiescence left descriptors live";
}

/// The per-machine §6.1 configs must agree on every default except the
/// topology, and both allocator settings must produce a working runtime
/// (the usePoolAllocator knob was silently ignored before the §4 layer).
TEST(RuntimeConfigTest, MachinePresetConfigsShareConsistentDefaults) {
  const RuntimeConfig xeon = makeXeonConfig();
  const RuntimeConfig rome = makeRomeConfig();
  const RuntimeConfig graviton = makeGravitonConfig();
  const RuntimeConfig reference =
      optimizedConfig(makeTopology(MachinePreset::Host));

  for (const RuntimeConfig* config : {&xeon, &rome, &graviton}) {
    EXPECT_EQ(config->scheduler, reference.scheduler);
    EXPECT_EQ(config->deps, reference.deps);
    EXPECT_EQ(config->usePoolAllocator, reference.usePoolAllocator);
    EXPECT_EQ(config->policy, reference.policy);
    EXPECT_EQ(config->schedBatchServe, reference.schedBatchServe);
    EXPECT_EQ(config->serveBurst, reference.serveBurst);
    EXPECT_EQ(config->schedWaiterLocality, reference.schedWaiterLocality);
    EXPECT_EQ(config->spscCapacity, reference.spscCapacity);
    EXPECT_EQ(config->stealProbeLimit, reference.stealProbeLimit);
    EXPECT_EQ(config->tracer, reference.tracer);  // factories never attach one
  }
  // The optimized configuration batches its delegation serving — batch
  // serve IS the §8 optimization, not an opt-in.
  EXPECT_TRUE(reference.schedBatchServe);
  EXPECT_TRUE(reference.schedWaiterLocality);
  EXPECT_EQ(reference.policy, PolicyKind::Fifo);
  EXPECT_EQ(xeon.topo.preset, MachinePreset::Xeon);
  EXPECT_EQ(rome.topo.preset, MachinePreset::Rome);
  EXPECT_EQ(graviton.topo.preset, MachinePreset::Graviton);
}

TEST(RuntimeConfigTest, BothAllocatorSettingsProduceAWorkingRuntime) {
  for (const bool usePool : {true, false}) {
    RuntimeConfig config = makeXeonConfig(2);  // 2 workers on CI hosts
    config.usePoolAllocator = usePool;
    Runtime rt(config);
    EXPECT_STREQ(rt.allocator().name(), usePool ? "pool" : "system");
    std::atomic<int> hits{0};
    for (int i = 0; i < 200; ++i) {
      rt.spawn({}, [&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
    EXPECT_EQ(hits.load(), 200);
  }
}

TEST(RuntimeTest, SpanSpawnOrdersVariableArityAccessLists) {
  // The apps layer's halo idiom: arity decided at run time (boundary
  // blocks drop a neighbor), accesses passed through the span overload.
  // A double-buffered 1D stencil's cross-step ordering only holds if the
  // span-registered accesses carry the same dependency semantics as the
  // braced-list overload.
  constexpr std::size_t kBlocks = 8;
  constexpr int kSteps = 20;
  Runtime rt(optimizedConfig(makeTopology(MachinePreset::Host, 4)));
  std::vector<long long> bufA(kBlocks, 0), bufB(kBlocks, 0);
  std::vector<long long>* src = &bufA;
  std::vector<long long>* dst = &bufB;
  for (int t = 0; t < kSteps; ++t) {
    for (std::size_t b = 0; b < kBlocks; ++b) {
      std::array<Access, 4> acc;
      std::size_t na = 0;
      if (b > 0) acc[na++] = in((*src)[b - 1]);
      acc[na++] = in((*src)[b]);
      if (b + 1 < kBlocks) acc[na++] = in((*src)[b + 1]);
      acc[na++] = out((*dst)[b]);
      rt.spawn(std::span<const Access>(acc.data(), na), [src, dst, b] {
        const long long left = b > 0 ? (*src)[b - 1] : 0;
        const long long right = b + 1 < kBlocks ? (*src)[b + 1] : 0;
        (*dst)[b] = (*src)[b] + left + right + 1;
      });
    }
    std::swap(src, dst);
  }
  rt.taskwait();

  // Serial replay must agree exactly (TSan additionally proves the span
  // accesses made the parallel version race-free).
  std::vector<long long> refA(kBlocks, 0), refB(kBlocks, 0);
  std::vector<long long>*rs = &refA, *rd = &refB;
  for (int t = 0; t < kSteps; ++t) {
    for (std::size_t b = 0; b < kBlocks; ++b) {
      const long long left = b > 0 ? (*rs)[b - 1] : 0;
      const long long right = b + 1 < kBlocks ? (*rs)[b + 1] : 0;
      (*rd)[b] = (*rs)[b] + left + right + 1;
    }
    std::swap(rs, rd);
  }
  EXPECT_EQ(*src, *rs);
}

TEST(RuntimeTest, SchedulerAndDepsMatchConfig) {
  RuntimeConfig config = withoutWaitFreeDepsConfig(
      makeTopology(MachinePreset::Host, 2));
  Runtime rt(config);
  EXPECT_STREQ(rt.deps().name(), "fine_grained_locks");
  EXPECT_STREQ(rt.scheduler().name(), "sync_dtlock");

  Runtime rtOpt(optimizedConfig(makeTopology(MachinePreset::Host, 2)));
  EXPECT_STREQ(rtOpt.deps().name(), "waitfree_asm");
}

}  // namespace
}  // namespace ats
