// Failure-domain coverage: the catch frame, graph poisoning and the
// skip-don't-run drain, taskwaitChecked rethrow, failpoint-driven spawn
// failures, the watchdog, and the fatal path — across every scheduler
// and deps kind.  The invariant under test everywhere: a failing graph
// DRAINS (descriptors return to the allocator, chains reset) and the
// runtime stays usable for the next batch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/failpoint.hpp"
#include "instr/trace_analyzer.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"
#include "runtime/runtime.hpp"

namespace ats {
namespace {

RuntimeConfig testConfig(DepsKind deps, SchedulerKind sched,
                         std::size_t workers) {
  RuntimeConfig config =
      optimizedConfig(makeTopology(MachinePreset::Host, workers));
  config.deps = deps;
  config.scheduler = sched;
  return config;
}

std::string kindName(DepsKind kind) {
  return kind == DepsKind::WaitFreeAsm ? "WaitFreeAsm" : "FineGrainedLocks";
}

std::string schedName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::CentralMutex: return "CentralMutex";
    case SchedulerKind::PTLockCentral: return "PTLockCentral";
    case SchedulerKind::SyncDelegation: return "SyncDelegation";
    case SchedulerKind::WorkStealing: return "WorkStealing";
  }
  return "unknown";
}

using Matrix = std::tuple<DepsKind, SchedulerKind>;

class FailureMatrixTest : public ::testing::TestWithParam<Matrix> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, FailureMatrixTest,
    ::testing::Combine(::testing::Values(DepsKind::WaitFreeAsm,
                                         DepsKind::FineGrainedLocks),
                       ::testing::Values(SchedulerKind::SyncDelegation,
                                         SchedulerKind::PTLockCentral,
                                         SchedulerKind::CentralMutex,
                                         SchedulerKind::WorkStealing)),
    [](const auto& info) {
      return kindName(std::get<0>(info.param)) + "_" +
             schedName(std::get<1>(info.param));
    });

// A body throwing mid-graph must not terminate the process, must surface
// through taskwaitChecked, must conserve every descriptor, and must
// leave the runtime fully usable.
TEST_P(FailureMatrixTest, ThrowingTaskPoisonsDrainsAndRethrows) {
  constexpr int kTasks = 500;
  const auto [deps, sched] = GetParam();
  Runtime rt(testConfig(deps, sched, 8));

  const std::uint64_t failedBefore = rt.tasksFailed();
  const std::uint64_t skippedBefore = rt.tasksSkipped();
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&executed, i] {
      if (i == kTasks / 2) throw std::runtime_error("boom");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(rt.taskwaitChecked(), std::runtime_error);

  // Conservation under failure: every spawned descriptor either ran to
  // completion, threw, or was skipped by the drain — and all of them
  // went back to the allocator.
  const std::uint64_t failed = rt.tasksFailed() - failedBefore;
  const std::uint64_t skipped = rt.tasksSkipped() - skippedBefore;
  EXPECT_GE(failed, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(executed.load()) + failed + skipped,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rt.liveDescriptors(), 0u);

  // The failure state was consumed: the next batch starts clean and a
  // checked wait returns normally.
  std::atomic<int> secondBatch{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&secondBatch] {
      secondBatch.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_NO_THROW(rt.taskwaitChecked());
  EXPECT_EQ(secondBatch.load(), kTasks);
  EXPECT_EQ(rt.liveDescriptors(), 0u);
}

// A deep inout chain: everything after the throwing link must be
// SKIPPED, never run — the successor-observes-the-token ordering
// guarantee, deterministic because the chain is totally ordered.
TEST_P(FailureMatrixTest, DeepInoutChainCancelsAllSuccessors) {
  constexpr int kDepth = 400;
  constexpr int kFailAt = 100;
  const auto [deps, sched] = GetParam();
  Runtime rt(testConfig(deps, sched, 8));

  const std::uint64_t skippedBefore = rt.tasksSkipped();
  long long counter = 0;  // non-atomic: the chain serializes access
  for (int i = 0; i < kDepth; ++i) {
    rt.spawn({inout(counter)}, [&counter, i] {
      if (i == kFailAt) throw std::runtime_error("chain link failed");
      ++counter;
    });
  }
  EXPECT_THROW(rt.taskwaitChecked(), std::runtime_error);

  EXPECT_EQ(counter, kFailAt)
      << "a successor of the failed link ran its body";
  EXPECT_EQ(rt.tasksSkipped() - skippedBefore,
            static_cast<std::uint64_t>(kDepth - kFailAt - 1));
  EXPECT_EQ(rt.liveDescriptors(), 0u);
}

// taskwait() (unchecked) drains a poisoned graph too, discarding the
// error instead of rethrowing — the documented legacy/destructor path.
TEST_P(FailureMatrixTest, UncheckedTaskwaitDiscardsTheError) {
  const auto [deps, sched] = GetParam();
  Runtime rt(testConfig(deps, sched, 4));
  rt.spawn({}, [] { throw std::runtime_error("dropped"); });
  EXPECT_NO_THROW(rt.taskwait());
  EXPECT_EQ(rt.liveDescriptors(), 0u);
  EXPECT_NO_THROW(rt.taskwaitChecked()) << "error must not leak forward";
}

// Caller-initiated cancel: the graph drains without running everything,
// and taskwaitChecked returns NORMALLY (cancellation the caller asked
// for is not a failure).
TEST_P(FailureMatrixTest, CancelDrainsWithoutError) {
  constexpr int kDepth = 300;
  const auto [deps, sched] = GetParam();
  Runtime rt(testConfig(deps, sched, 4));

  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  std::atomic<int> executed{0};
  long long chain = 0;
  rt.spawn({inout(chain)}, [&started, &gate, &executed] {
    started.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire))
      std::this_thread::yield();
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 1; i < kDepth; ++i) {
    rt.spawn({inout(chain)}, [&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Cancel only once the head of the chain is demonstrably RUNNING: an
  // in-flight body is never interrupted, so it must complete; every
  // successor observes the token at dequeue and is skipped.
  while (!started.load(std::memory_order_acquire))
    std::this_thread::yield();
  rt.cancel();
  gate.store(true, std::memory_order_release);
  EXPECT_NO_THROW(rt.taskwaitChecked());
  // The gate task was already running when the token flipped; every
  // successor became ready only after it completed and must be skipped.
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(rt.liveDescriptors(), 0u);

  // cancel() is consumed by the wait: the runtime runs normally after.
  std::atomic<int> after{0};
  for (int i = 0; i < 64; ++i)
    rt.spawn({}, [&after] { after.fetch_add(1, std::memory_order_relaxed); });
  rt.taskwait();
  EXPECT_EQ(after.load(), 64);
}

// Failpoint-injected spawn failure: deps_register sits BEFORE any
// mutation, so the throw surfaces at the spawn() call site, the
// descriptor is reclaimed, and the graph that was already registered
// still drains normally.
TEST_P(FailureMatrixTest, SpawnFailureAtDepsRegisterIsClean) {
  const auto [deps, sched] = GetParam();
  const char* site = deps == DepsKind::WaitFreeAsm ? "deps_register"
                                                   : "deps_register_locked";
  Runtime rt(testConfig(deps, sched, 4));
  std::atomic<int> executed{0};
  for (int i = 0; i < 100; ++i) {
    rt.spawn({}, [&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  FailpointRegistry::instance().arm(site, FailpointMode::Throw, 1.0, 1);
  long long obj = 0;
  EXPECT_THROW(rt.spawn({inout(obj)}, [] {}), FailpointError);
  FailpointRegistry::instance().disarm(site);

  EXPECT_NO_THROW(rt.taskwaitChecked())
      << "a spawn-side failure must not poison the graph";
  EXPECT_EQ(executed.load(), 100);
  EXPECT_EQ(rt.liveDescriptors(), 0u);
}

// closure_spill guards the heap-spill allocation: a large-capture spawn
// fails cleanly at the call site, conservation intact.
TEST(FailpointSpawnTest, ClosureSpillFailureReclaimsTheDescriptor) {
  Runtime rt(testConfig(DepsKind::WaitFreeAsm,
                        SchedulerKind::SyncDelegation, 4));
  struct BigCapture {
    char bytes[128] = {};
  } big;
  FailpointRegistry::instance().arm("closure_spill", FailpointMode::Throw,
                                    1.0, 1);
  EXPECT_THROW(rt.spawn({}, [big] { (void)big; }), FailpointError);
  FailpointRegistry::instance().disarm("closure_spill");
  rt.taskwait();
  EXPECT_EQ(rt.liveDescriptors(), 0u);

  std::atomic<int> ran{0};
  rt.spawn({}, [big, &ran] {
    (void)big;
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  rt.taskwait();
  EXPECT_EQ(ran.load(), 1);
}

// The CI smoke shape: assertions that hold under ANY ATS_FAILPOINTS
// arming of task_invoke (and pass unarmed too).  Everything here is
// injection-invariant: lifetime-counter conservation, drain-to-zero,
// and a usable runtime afterwards — NOT "all bodies ran".
TEST(FaultSmokeTest, ConservationHoldsUnderTaskInvokeInjection) {
  constexpr int kTasks = 3000;
  Runtime rt(testConfig(DepsKind::WaitFreeAsm,
                        SchedulerKind::SyncDelegation, 8));
  const std::uint64_t failedBefore = rt.tasksFailed();
  const std::uint64_t skippedBefore = rt.tasksSkipped();
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({}, [&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  rt.taskwait();  // drains poisoned or clean alike
  const std::uint64_t failed = rt.tasksFailed() - failedBefore;
  const std::uint64_t skipped = rt.tasksSkipped() - skippedBefore;
  EXPECT_EQ(static_cast<std::uint64_t>(executed.load()) + failed + skipped,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rt.liveDescriptors(), 0u);
  EXPECT_EQ(rt.tasksRetired() % 1, 0u);  // counter is readable/monotone
}

TEST(FaultSmokeTest, InoutChainsSurviveInjectionAcrossBatches) {
  constexpr int kLinks = 200;
  constexpr int kBatches = 5;
  Runtime rt(testConfig(DepsKind::WaitFreeAsm,
                        SchedulerKind::WorkStealing, 8));
  const std::uint64_t failedBefore = rt.tasksFailed();
  const std::uint64_t skippedBefore = rt.tasksSkipped();
  std::atomic<long long> executed{0};
  for (int batch = 0; batch < kBatches; ++batch) {
    long long chain = 0;
    for (int i = 0; i < kLinks; ++i) {
      rt.spawn({inout(chain)}, [&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt.taskwait();
  }
  const std::uint64_t failed = rt.tasksFailed() - failedBefore;
  const std::uint64_t skipped = rt.tasksSkipped() - skippedBefore;
  EXPECT_EQ(static_cast<std::uint64_t>(executed.load()) + failed + skipped,
            static_cast<std::uint64_t>(kLinks) * kBatches);
  EXPECT_EQ(rt.liveDescriptors(), 0u);
}

// Watchdog: fires on a genuine stall (work in flight, nothing retiring),
// reports through the installed hook instead of aborting, re-arms only
// when progress resumes, and stays silent at idle.
TEST(WatchdogTest, FiresOnStallThenStaysQuietWhenIdle) {
  struct StallLog {
    std::atomic<int> fired{0};
    std::atomic<bool> reportSane{false};
  } log;

  RuntimeConfig config = testConfig(DepsKind::WaitFreeAsm,
                                    SchedulerKind::SyncDelegation, 4);
  config.watchdogTimeoutMs = 50;
  config.watchdogOnStall = [](void* ctx, const char* report) {
    auto* log = static_cast<StallLog*>(ctx);
    if (std::string(report).find("inFlight=") != std::string::npos)
      log->reportSane.store(true, std::memory_order_relaxed);
    log->fired.fetch_add(1, std::memory_order_relaxed);
  };
  config.watchdogOnStallCtx = &log;
  Runtime rt(config);

  std::atomic<bool> gate{false};
  rt.spawn({}, [&gate] {
    while (!gate.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Deliberate stall: one task pinned in flight, nothing retiring.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.fired.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(log.fired.load(), 1) << "stall never detected within 10s";
  EXPECT_TRUE(log.reportSane.load()) << "report missing runtime state";

  gate.store(true, std::memory_order_release);
  rt.taskwait();

  // Idle is not a stall: with nothing in flight the clock must not fire
  // again no matter how long we sit.
  const int firedAfterDrain = log.fired.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(log.fired.load(std::memory_order_relaxed), firedAfterDrain)
      << "watchdog fired while idle";

  // And a healthy busy runtime (tasks retiring constantly) is progress,
  // not a stall.
  std::atomic<int> ran{0};
  for (int i = 0; i < 2000; ++i)
    rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  rt.taskwait();
  EXPECT_EQ(ran.load(), 2000);
  EXPECT_EQ(log.fired.load(std::memory_order_relaxed), firedAfterDrain)
      << "watchdog fired on a healthy retiring graph";
}

// Traced failure: the v4 events land in the right streams and the
// analyzer's failure counters obey conservation (starts == ends + fails,
// starts + skips == spawns).
TEST(TracedFailureTest, AnalyzerCountsFailuresSkipsAndCancellation) {
  constexpr int kDepth = 120;
  constexpr int kFailAt = 40;
  constexpr std::size_t kWorkers = 4;
  Tracer tracer(kWorkers, 1u << 14);
  RuntimeConfig config = testConfig(DepsKind::WaitFreeAsm,
                                    SchedulerKind::SyncDelegation, kWorkers);
  config.tracer = &tracer;
  {
    Runtime rt(config);
    long long chain = 0;
    for (int i = 0; i < kDepth; ++i) {
      rt.spawn({inout(chain)}, [&chain, i] {
        if (i == kFailAt) throw std::runtime_error("traced failure");
        ++chain;
      });
    }
    EXPECT_THROW(rt.taskwaitChecked(), std::runtime_error);
  }
  const auto records = tracer.collect();
  const TraceAnalysis analysis = analyzeTrace(records, kWorkers);

  EXPECT_EQ(analysis.taskFailedCount, 1u);
  EXPECT_EQ(analysis.taskSkippedCount,
            static_cast<std::uint64_t>(kDepth - kFailAt - 1));
  EXPECT_EQ(analysis.graphCancelledCount, 1u);
  // Conservation in the trace itself: every started body ended or
  // failed, and starts + skips cover the whole spawn set.
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
  for (const TraceRecord& record : records) {
    if (record.event == TraceEvent::TaskStart) ++starts;
    if (record.event == TraceEvent::TaskEnd) ++ends;
  }
  EXPECT_EQ(starts, ends + analysis.taskFailedCount);
  EXPECT_EQ(starts + analysis.taskSkippedCount,
            static_cast<std::uint64_t>(kDepth));
}

// Caller-initiated cancel traces as GraphCancelled payload 1.
TEST(TracedFailureTest, CallerCancelEmitsDistinctPayload) {
  constexpr std::size_t kWorkers = 2;
  Tracer tracer(kWorkers, 1u << 12);
  RuntimeConfig config = testConfig(DepsKind::WaitFreeAsm,
                                    SchedulerKind::SyncDelegation, kWorkers);
  config.tracer = &tracer;
  {
    Runtime rt(config);
    rt.cancel();
    rt.taskwait();
  }
  bool sawCallerCancel = false;
  for (const TraceRecord& record : tracer.collect()) {
    if (record.event == TraceEvent::GraphCancelled && record.payload == 1)
      sawCallerCancel = true;
  }
  EXPECT_TRUE(sawCallerCancel);
}

// TaskFailed payload carries the injecting failpoint's registry id, so
// trace readers can name the chokepoint without string matching.
TEST(TracedFailureTest, InjectedFailureStampsFailpointIdIntoPayload) {
  constexpr std::size_t kWorkers = 2;
  Tracer tracer(kWorkers, 1u << 12);
  RuntimeConfig config = testConfig(DepsKind::WaitFreeAsm,
                                    SchedulerKind::SyncDelegation, kWorkers);
  config.tracer = &tracer;
  auto& registry = FailpointRegistry::instance();
  const std::uint32_t expectId = registry.site("task_invoke").id();
  {
    Runtime rt(config);
    registry.arm("task_invoke", FailpointMode::Throw, 1.0, 1);
    rt.spawn({}, [] {});
    EXPECT_THROW(rt.taskwaitChecked(), FailpointError);
    registry.disarm("task_invoke");
  }
  bool sawStampedFailure = false;
  for (const TraceRecord& record : tracer.collect()) {
    if (record.event == TraceEvent::TaskFailed &&
        record.payload == expectId)
      sawStampedFailure = true;
  }
  EXPECT_TRUE(sawStampedFailure);
}

// ---- death tests: the ats::fatal paths ------------------------------

#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define ATS_RUN_FATAL_DEATH_TESTS 1
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#undef ATS_RUN_FATAL_DEATH_TESTS
#define ATS_RUN_FATAL_DEATH_TESTS 0
#endif
#endif
#else
#define ATS_RUN_FATAL_DEATH_TESTS 0
#endif

#if ATS_RUN_FATAL_DEATH_TESTS

TEST(FatalDeathTest, MakeSchedulerRejectsUnknownKindWithFileLine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RuntimeConfig config = testConfig(DepsKind::WaitFreeAsm,
                                    SchedulerKind::SyncDelegation, 1);
  config.scheduler = static_cast<SchedulerKind>(99);
  // fatal() prints dir/file:line before the message.
  EXPECT_DEATH((void)makeScheduler(config),
               "ats: FATAL runtime/scheduler_factory\\.cpp:[0-9]+: "
               "makeScheduler: unknown SchedulerKind 99");
}

TEST(FatalDeathTest, TaskwaitInsideTaskBodyDiesNamingTheRoadmapItem) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(testConfig(DepsKind::WaitFreeAsm,
                              SchedulerKind::SyncDelegation, 2));
        rt.spawn({}, [&rt] { rt.taskwait(); });
        rt.taskwait();
      },
      "called from inside a task.*Production service mode");
}

// The crash-evidence pipeline end to end: a fatal inside a traced
// runtime dumps the rings to ATS_TRACE_DIR, and the file reads back as
// a valid v4 trace with the activity leading up to the death.
TEST(FatalDeathTest, FatalHookDumpsReadableTraceFile) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ats_fatal_dump_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ::setenv("ATS_TRACE_DIR", dir.c_str(), 1);

  EXPECT_DEATH(
      {
        constexpr std::size_t kWorkers = 2;
        Tracer tracer(kWorkers, 1u << 12);
        RuntimeConfig config = testConfig(
            DepsKind::WaitFreeAsm, SchedulerKind::SyncDelegation, kWorkers);
        config.tracer = &tracer;
        Runtime rt(config);
        std::atomic<int> ran{0};
        for (int i = 0; i < 32; ++i)
          rt.spawn({}, [&ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        rt.taskwait();
        rt.spawn({}, [&rt] { rt.taskwait(); });  // fatal in the child
        rt.taskwait();
      },
      "fatal hook wrote [0-9]+ trace records");

  bool foundDump = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ats") continue;
    std::vector<TraceRecord> records;
    ASSERT_TRUE(TraceWriter::readBinary(entry.path().string(), records))
        << "dump exists but does not read back: " << entry.path();
    EXPECT_FALSE(records.empty());
    foundDump = true;
  }
  EXPECT_TRUE(foundDump) << "no fatal-<pid>.ats landed in " << dir;
  ::unsetenv("ATS_TRACE_DIR");
  fs::remove_all(dir);
}

#endif  // ATS_RUN_FATAL_DEATH_TESTS

}  // namespace
}  // namespace ats
