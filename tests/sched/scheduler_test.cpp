#include "runtime/scheduler_factory.hpp"
#include "sched/central_mutex_scheduler.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/task.hpp"

namespace ats {
namespace {

Topology testTopo(std::size_t cpus) {
  return makeTopology(MachinePreset::Host, cpus);
}

std::unique_ptr<Scheduler> makeByName(const std::string& which,
                                      std::size_t cpus,
                                      std::size_t addBufferCapacity = 256) {
  const Topology topo = testTopo(cpus);
  if (which == "central_mutex")
    return std::make_unique<CentralMutexScheduler>(topo);
  if (which == "ptlock")
    return std::make_unique<PTLockScheduler>(
        topo, std::make_unique<FifoScheduler>());
  return std::make_unique<SyncScheduler>(topo,
                                         std::make_unique<FifoScheduler>(),
                                         addBufferCapacity);
}

class EverySchedulerTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Designs, EverySchedulerTest,
                         ::testing::Values("central_mutex", "ptlock",
                                           "sync_dtlock"));

TEST_P(EverySchedulerTest, EmptySchedulerReturnsNull) {
  auto sched = makeByName(GetParam(), 4);
  EXPECT_EQ(sched->getReadyTask(0), nullptr);
  EXPECT_EQ(sched->getReadyTask(3), nullptr);
}

TEST_P(EverySchedulerTest, SingleThreadFifoRoundTrip) {
  auto sched = makeByName(GetParam(), 4);
  std::vector<Task> pool(100);
  for (auto& t : pool) sched->addReadyTask(&t, 0);
  for (auto& t : pool) {
    // A single producer's adds must come back in insertion order under
    // the FIFO policy, whichever CPU asks.
    EXPECT_EQ(sched->getReadyTask(1), &t);
  }
  EXPECT_EQ(sched->getReadyTask(1), nullptr);
}

/// One producer, three consumers: every enqueued task pointer must come
/// back exactly once — the conservation law the micro_dtlock flood
/// assumes.  Runs the exact thread shape of the bench.
TEST_P(EverySchedulerTest, FloodConservesTasksExactlyOnce) {
  constexpr std::size_t kTasks = 20000;
  constexpr int kConsumers = 3;
  auto sched = makeByName(GetParam(), kConsumers + 1);
  std::vector<Task> pool(kTasks);

  std::atomic<std::size_t> retrieved{0};
  std::vector<std::vector<Task*>> got(kConsumers);

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (auto& t : pool) sched->addReadyTask(&t, 0);
  });
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t cpu = static_cast<std::size_t>(c) + 1;
      while (retrieved.load(std::memory_order_relaxed) < kTasks) {
        Task* t = sched->getReadyTask(cpu);
        if (t != nullptr) {
          got[static_cast<std::size_t>(c)].push_back(t);
          retrieved.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Task*> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(all[i], &pool[i]) << "a task was lost or handed out twice";
  }
  EXPECT_EQ(sched->getReadyTask(0), nullptr);
}

TEST(SyncSchedulerTest, OverflowDrainLosesNothingAndKeepsOrder) {
  // Buffer of 8 while 1000 tasks pour in from one thread with no
  // consumer: the overflow help-drain path runs ~125 times.
  auto sched = std::make_unique<SyncScheduler>(
      testTopo(2), std::make_unique<FifoScheduler>(), 8);
  std::vector<Task> pool(1000);
  for (auto& t : pool) sched->addReadyTask(&t, 0);
  for (auto& t : pool) {
    ASSERT_EQ(sched->getReadyTask(1), &t);
  }
  EXPECT_EQ(sched->getReadyTask(1), nullptr);
}

TEST(SyncSchedulerTest, PerCpuBuffersDrainFromAnyGetter) {
  auto sched = std::make_unique<SyncScheduler>(
      testTopo(4), std::make_unique<FifoScheduler>(), 64);
  std::vector<Task> pool(8);
  // Adds from several different CPUs sit in distinct SPSC buffers...
  for (std::size_t i = 0; i < pool.size(); ++i) {
    sched->addReadyTask(&pool[i], i % 4);
  }
  // ...and one getter on yet another CPU sees all of them.
  std::vector<Task*> got;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    Task* t = sched->getReadyTask(3);
    ASSERT_NE(t, nullptr);
    got.push_back(t);
  }
  EXPECT_EQ(sched->getReadyTask(3), nullptr);
  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(got[i], &pool[i]);
}

TEST(SchedulerFactoryTest, BuildsTheConfiguredDesign) {
  const Topology topo = testTopo(4);
  EXPECT_STREQ(makeScheduler(centralMutexRuntimeConfig(topo))->name(),
               "central_mutex");
  EXPECT_STREQ(makeScheduler(withoutDTLockConfig(topo))->name(),
               "ptlock_central");
  EXPECT_STREQ(makeScheduler(optimizedConfig(topo))->name(), "sync_dtlock");
  // Work stealing maps onto the delegation scheduler until its runtime
  // lands.
  EXPECT_STREQ(makeScheduler(workStealingRuntimeConfig(topo))->name(),
               "sync_dtlock");
}

TEST(FifoSchedulerTest, PolicyIsPlainFifo) {
  FifoScheduler fifo;
  std::vector<Task> pool(5);
  EXPECT_EQ(fifo.getTask(0), nullptr);
  for (auto& t : pool) fifo.addTask(&t, 0);
  for (auto& t : pool) EXPECT_EQ(fifo.getTask(2), &t);
  EXPECT_EQ(fifo.getTask(0), nullptr);
  EXPECT_STREQ(fifo.policyName(), "fifo");
}

}  // namespace
}  // namespace ats
