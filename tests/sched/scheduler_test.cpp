#include "runtime/scheduler_factory.hpp"
#include "sched/central_mutex_scheduler.hpp"
#include "sched/policies.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"
#include "sched/work_stealing_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/task.hpp"

namespace ats {
namespace {

Topology testTopo(std::size_t cpus) {
  return makeTopology(MachinePreset::Host, cpus);
}

std::unique_ptr<Scheduler> makeByName(const std::string& which,
                                      std::size_t cpus,
                                      std::size_t spscCapacity = 256) {
  const Topology topo = testTopo(cpus);
  if (which == "central_mutex")
    return std::make_unique<CentralMutexScheduler>(topo);
  if (which == "ptlock")
    return std::make_unique<PTLockScheduler>(
        topo, std::make_unique<FifoPolicy>());
  if (which == "work_steal")
    return std::make_unique<WorkStealingScheduler>(
        topo, WorkStealingScheduler::Options{.dequeCapacity = spscCapacity});
  // Rome-preset variants pin the multi-domain paths: `cpus` CPUs shrink
  // the 8-domain preset to one CPU per domain, so every waiter group and
  // add-buffer shard is its own domain and the NumaFifo policy's queues
  // are maximally split.  "_holder" turns waiter-locality off (the PR-5
  // holder-locality serve), so both sides of the micro_numa ablation
  // keep the conservation and ordering laws.
  if (which == "sync_dtlock_rome" || which == "sync_dtlock_rome_holder") {
    const Topology rome = makeTopology(MachinePreset::Rome, cpus);
    return std::make_unique<SyncScheduler>(
        rome, std::make_unique<NumaFifoPolicy>(rome),
        SyncScheduler::Options{.spscCapacity = spscCapacity,
                               .waiterLocality =
                                   which == "sync_dtlock_rome"});
  }
  if (which == "ptlock_rome") {
    const Topology rome = makeTopology(MachinePreset::Rome, cpus);
    return std::make_unique<PTLockScheduler>(
        rome, std::make_unique<NumaFifoPolicy>(rome), spscCapacity);
  }
  // "sync_dtlock" runs the batched (default) serve; "sync_dtlock_serve1"
  // the Listing-5 serve-one ablation baseline.
  return std::make_unique<SyncScheduler>(
      topo, std::make_unique<FifoPolicy>(),
      SyncScheduler::Options{.spscCapacity = spscCapacity,
                             .batchServe = which != "sync_dtlock_serve1"});
}

class EverySchedulerTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Designs, EverySchedulerTest,
                         ::testing::Values("central_mutex", "ptlock",
                                           "ptlock_rome",
                                           "sync_dtlock",
                                           "sync_dtlock_serve1",
                                           "sync_dtlock_rome",
                                           "sync_dtlock_rome_holder",
                                           "work_steal"));

TEST_P(EverySchedulerTest, EmptySchedulerReturnsNull) {
  auto sched = makeByName(GetParam(), 4);
  EXPECT_EQ(sched->getReadyTask(0), nullptr);
  EXPECT_EQ(sched->getReadyTask(3), nullptr);
}

TEST_P(EverySchedulerTest, SingleThreadFifoRoundTrip) {
  auto sched = makeByName(GetParam(), 4);
  std::vector<Task> pool(100);
  for (auto& t : pool) sched->addReadyTask(&t, 0);
  for (auto& t : pool) {
    // A single producer's adds must come back in insertion order under
    // the FIFO policy, whichever CPU asks.
    EXPECT_EQ(sched->getReadyTask(1), &t);
  }
  EXPECT_EQ(sched->getReadyTask(1), nullptr);
}

/// One producer, three consumers: every enqueued task pointer must come
/// back exactly once — the conservation law the micro_dtlock flood
/// assumes.  Runs the exact thread shape of the bench.
TEST_P(EverySchedulerTest, FloodConservesTasksExactlyOnce) {
  constexpr std::size_t kTasks = 20000;
  constexpr int kConsumers = 3;
  auto sched = makeByName(GetParam(), kConsumers + 1);
  std::vector<Task> pool(kTasks);

  std::atomic<std::size_t> retrieved{0};
  std::vector<std::vector<Task*>> got(kConsumers);

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (auto& t : pool) sched->addReadyTask(&t, 0);
  });
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t cpu = static_cast<std::size_t>(c) + 1;
      while (retrieved.load(std::memory_order_relaxed) < kTasks) {
        Task* t = sched->getReadyTask(cpu);
        if (t != nullptr) {
          got[static_cast<std::size_t>(c)].push_back(t);
          retrieved.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Task*> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(all[i], &pool[i]) << "a task was lost or handed out twice";
  }
  EXPECT_EQ(sched->getReadyTask(0), nullptr);
}

TEST(SyncSchedulerTest, OverflowDrainLosesNothingAndKeepsOrder) {
  // Buffer of 8 while 1000 tasks pour in from one thread with no
  // consumer: the overflow help-drain path runs ~125 times.
  auto sched = std::make_unique<SyncScheduler>(
      testTopo(2), std::make_unique<FifoPolicy>(),
      SyncScheduler::Options{.spscCapacity = 8});
  std::vector<Task> pool(1000);
  for (auto& t : pool) sched->addReadyTask(&t, 0);
  for (auto& t : pool) {
    ASSERT_EQ(sched->getReadyTask(1), &t);
  }
  EXPECT_EQ(sched->getReadyTask(1), nullptr);
}

TEST(SyncSchedulerTest, PerCpuBuffersDrainFromAnyGetter) {
  auto sched = std::make_unique<SyncScheduler>(
      testTopo(4), std::make_unique<FifoPolicy>(),
      SyncScheduler::Options{.spscCapacity = 64});
  std::vector<Task> pool(8);
  // Adds from several different CPUs sit in distinct SPSC buffers...
  for (std::size_t i = 0; i < pool.size(); ++i) {
    sched->addReadyTask(&pool[i], i % 4);
  }
  // ...and one getter on yet another CPU sees all of them.
  std::vector<Task*> got;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    Task* t = sched->getReadyTask(3);
    ASSERT_NE(t, nullptr);
    got.push_back(t);
  }
  EXPECT_EQ(sched->getReadyTask(3), nullptr);
  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(got[i], &pool[i]);
}

/// serveBurst=1 is the smallest legal batch: every combining pass
/// snapshots exactly one waiter, so batch boundaries fall between every
/// pair of serves.  Conservation must still hold.
TEST(SyncSchedulerTest, UnitServeBurstStillConservesUnderContention) {
  constexpr std::size_t kTasks = 5000;
  constexpr int kConsumers = 3;
  SyncScheduler sched(testTopo(kConsumers + 1),
                      std::make_unique<FifoPolicy>(),
                      SyncScheduler::Options{.serveBurst = 1});
  std::vector<Task> pool(kTasks);

  std::atomic<std::size_t> retrieved{0};
  std::vector<std::vector<Task*>> got(kConsumers);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (auto& t : pool) sched.addReadyTask(&t, 0);
  });
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t cpu = static_cast<std::size_t>(c) + 1;
      while (retrieved.load(std::memory_order_relaxed) < kTasks) {
        if (Task* t = sched.getReadyTask(cpu); t != nullptr) {
          got[static_cast<std::size_t>(c)].push_back(t);
          retrieved.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Task*> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kTasks; ++i) ASSERT_EQ(all[i], &pool[i]);
}

TEST(AddBufferSetTest, DomainDrainIsShardedAndBounded) {
  Topology topo;
  topo.numCpus = 4;
  topo.numNumaDomains = 2;  // slots 0,1 -> domain 0; 2,3 -> domain 1
  topo.reservedSlots = 1;   // slot 4 folds into domain 0's shard
  AddBufferSet buffers(topo, 16);
  EXPECT_EQ(buffers.numCpus(), 5u);
  EXPECT_EQ(buffers.numDomains(), 2u);

  FifoPolicy fifo;
  std::vector<Task> pool(5);
  ASSERT_TRUE(buffers.tryPush(&pool[0], 0));
  ASSERT_TRUE(buffers.tryPush(&pool[1], 1));
  ASSERT_TRUE(buffers.tryPush(&pool[2], 4));  // reserved slot, domain 0
  ASSERT_TRUE(buffers.tryPush(&pool[3], 2));
  ASSERT_TRUE(buffers.tryPush(&pool[4], 3));

  // Domain 0's drain covers slots 0, 1 and the folded spawner slot —
  // and leaves domain 1's rings untouched.
  EXPECT_EQ(buffers.drainDomain(fifo, 0), 3u);
  // Bounded drain takes exactly the cap and leaves the rest published.
  EXPECT_EQ(buffers.drainDomain(fifo, 1, 1), 1u);
  EXPECT_EQ(buffers.drainDomain(fifo, 1), 1u);
  EXPECT_EQ(buffers.drainInto(fifo), 0u);

  std::vector<Task*> got;
  while (Task* t = fifo.getTask(0)) got.push_back(t);
  ASSERT_EQ(got.size(), pool.size());
  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(got[i], &pool[i]);
}

/// The starvation guarantee behind the domain-first drains: a domain
/// with producers but NO getters must still drain.  The waiter-locality
/// serve prefers the waiters' own shards, but when the policy runs dry
/// the flat fallback reaches every ring, and NumaFifo's round-robin
/// fallback then hands the tasks across domains.
TEST(SyncSchedulerTest, ProducerOnlyDomainStillDrainsCrossDomain) {
  Topology topo;
  topo.numCpus = 4;
  topo.numNumaDomains = 2;  // CPUs 0-1 -> domain 0; 2-3 -> domain 1
  SyncScheduler sched(topo, std::make_unique<NumaFifoPolicy>(topo),
                      SyncScheduler::Options{.spscCapacity = 256});
  std::vector<Task> pool(100);
  for (auto& t : pool) sched.addReadyTask(&t, 0);  // domain-0 producer only
  // Only domain-1 CPUs ever ask; every domain-0 task must reach them,
  // in order (single producer, FIFO within its domain queue).
  for (auto& t : pool) ASSERT_EQ(sched.getReadyTask(2), &t);
  EXPECT_EQ(sched.getReadyTask(3), nullptr);
}

TEST(SchedulerFactoryTest, BuildsTheConfiguredDesign) {
  const Topology topo = testTopo(4);
  EXPECT_STREQ(makeScheduler(centralMutexRuntimeConfig(topo))->name(),
               "central_mutex");
  EXPECT_STREQ(makeScheduler(withoutDTLockConfig(topo))->name(),
               "ptlock_central");
  EXPECT_STREQ(makeScheduler(optimizedConfig(topo))->name(), "sync_dtlock");
  // The real work-stealing design, not the former SyncScheduler alias.
  EXPECT_STREQ(makeScheduler(workStealingRuntimeConfig(topo))->name(),
               "work_steal");
}

TEST(SchedulerFactoryTest, KindNamesMatchSchedulerNames) {
  // schedulerKindName is the label benches and error paths print; it
  // must agree with what the constructed scheduler calls itself.
  const Topology topo = testTopo(4);
  for (const SchedulerKind kind :
       {SchedulerKind::CentralMutex, SchedulerKind::PTLockCentral,
        SchedulerKind::SyncDelegation, SchedulerKind::WorkStealing}) {
    RuntimeConfig config = optimizedConfig(topo);
    config.scheduler = kind;
    EXPECT_STREQ(makeScheduler(config)->name(), schedulerKindName(kind));
  }
}

// RuntimeConfig cannot include the sched layer's header, so its default
// duplicates the scheduler's constant; this is the guard that keeps the
// two from drifting.
static_assert(WorkStealingSchedulerOptions::kDefaultStealProbeLimit == 64);

TEST(WorkStealingSchedulerTest, ConfigDefaultMirrorsSchedulerDefault) {
  RuntimeConfig config;
  EXPECT_EQ(config.stealProbeLimit,
            WorkStealingSchedulerOptions::kDefaultStealProbeLimit);
}

TEST(WorkStealingSchedulerTest, ClampsProbeLimitToAtLeastOne) {
  // stealProbeLimit = 0 would make remote-domain work unreachable; the
  // constructor clamps it.
  WorkStealingScheduler sched(testTopo(4),
                              WorkStealingScheduler::Options{
                                  .stealProbeLimit = 0});
  EXPECT_EQ(sched.stealProbeLimit(), 1u);
}

TEST(WorkStealingSchedulerTest, SpawnerSlotDequeIsStealOnlyIngress) {
  // Adds submitted from the reserved spawner slot (slot == numCpus) land
  // in that slot's own deque and are reachable from any worker via the
  // steal path — the external-submission story.
  Topology topo = testTopo(4);
  topo.reservedSlots = 1;  // what the Runtime does before construction
  WorkStealingScheduler sched(topo);
  std::vector<Task> pool(10);
  for (auto& t : pool) sched.addReadyTask(&t, topo.numCpus);
  for (auto& t : pool) EXPECT_EQ(sched.getReadyTask(2), &t);
  EXPECT_EQ(sched.getReadyTask(2), nullptr);
}

TEST(WorkStealingSchedulerTest, LocalPopIsLifoThenStealsAreFifo) {
  // The owner drains its own deque newest-first (depth-first fast
  // path); a different slot then steals oldest-first.
  WorkStealingScheduler sched(testTopo(4));
  std::vector<Task> pool(6);
  for (auto& t : pool) sched.addReadyTask(&t, 1);
  EXPECT_EQ(sched.getReadyTask(1), &pool[5]);
  EXPECT_EQ(sched.getReadyTask(1), &pool[4]);
  EXPECT_EQ(sched.getReadyTask(2), &pool[0]);
  EXPECT_EQ(sched.getReadyTask(2), &pool[1]);
  EXPECT_EQ(sched.getReadyTask(1), &pool[3]);
  EXPECT_EQ(sched.getReadyTask(1), &pool[2]);
  EXPECT_EQ(sched.getReadyTask(1), nullptr);
  EXPECT_EQ(sched.getReadyTask(2), nullptr);
}

// ------------------------------------------------------------- policies

TEST(PolicyTest, FifoIsPlainFifo) {
  FifoPolicy fifo;
  std::vector<Task> pool(5);
  EXPECT_EQ(fifo.getTask(0), nullptr);
  for (auto& t : pool) fifo.addTask(&t, 0);
  for (auto& t : pool) EXPECT_EQ(fifo.getTask(2), &t);
  EXPECT_EQ(fifo.getTask(0), nullptr);
  EXPECT_STREQ(fifo.policyName(), "fifo");
}

TEST(PolicyTest, LifoReturnsNewestFirst) {
  LifoPolicy lifo;
  std::vector<Task> pool(5);
  EXPECT_EQ(lifo.getTask(0), nullptr);
  for (auto& t : pool) lifo.addTask(&t, 0);
  for (std::size_t i = pool.size(); i-- > 0;) {
    EXPECT_EQ(lifo.getTask(1), &pool[i]);
  }
  EXPECT_EQ(lifo.getTask(0), nullptr);
  EXPECT_STREQ(lifo.policyName(), "lifo");
}

TEST(PolicyTest, BulkGetTasksMatchesRepeatedGetTask) {
  // The bulk form must deliver the same multiset in the same order as
  // N getTask calls — for the overriding policies AND the base-class
  // default loop (exercised through a minimal adapter).
  struct DefaultLoopFifo : SchedulerPolicy {
    FifoPolicy inner;
    void addTask(Task* t, std::size_t cpu) override { inner.addTask(t, cpu); }
    Task* getTask(std::size_t cpu) override { return inner.getTask(cpu); }
    // getTasks NOT overridden: runs SchedulerPolicy's default loop.
    const char* policyName() const override { return "default_loop"; }
  };

  std::vector<Task> pool(10);
  const auto fill = [&](SchedulerPolicy& p) {
    for (auto& t : pool) p.addTask(&t, 0);
  };

  FifoPolicy fifo;
  LifoPolicy lifo;
  NumaFifoPolicy numa(testTopo(4));
  DefaultLoopFifo defaulted;
  for (SchedulerPolicy* p :
       {static_cast<SchedulerPolicy*>(&fifo),
        static_cast<SchedulerPolicy*>(&lifo),
        static_cast<SchedulerPolicy*>(&numa),
        static_cast<SchedulerPolicy*>(&defaulted)}) {
    fill(*p);
    Task* out[16] = {};
    // Ask for more than available: got reports the true count.
    EXPECT_EQ(p->getTasks(out, 16, 0), pool.size()) << p->policyName();
    std::vector<Task*> bulk(out, out + pool.size());

    fill(*p);
    std::vector<Task*> oneByOne;
    while (Task* t = p->getTask(0)) oneByOne.push_back(t);
    EXPECT_EQ(bulk, oneByOne) << p->policyName();
    EXPECT_EQ(p->getTasks(out, 4, 0), 0u) << p->policyName();
  }
}

TEST(PolicyTest, NumaFifoPrefersLocalDomainThenFallsBack) {
  // Rome-shaped 8-CPU topology: 8 domains collapse to min(8, ...) per
  // makeTopology; build an explicit 2-domain shape instead so the
  // domain math is known: CPUs 0-1 -> domain 0, CPUs 2-3 -> domain 1.
  Topology topo;
  topo.numCpus = 4;
  topo.numNumaDomains = 2;
  NumaFifoPolicy numa(topo);

  std::vector<Task> pool(4);
  numa.addTask(&pool[0], 0);  // domain 0
  numa.addTask(&pool[1], 1);  // domain 0
  numa.addTask(&pool[2], 2);  // domain 1
  numa.addTask(&pool[3], 3);  // domain 1

  // A domain-1 CPU drains its own domain (FIFO within it) first...
  EXPECT_EQ(numa.getTask(2), &pool[2]);
  EXPECT_EQ(numa.getTask(3), &pool[3]);
  // ...then falls back to the remote domain instead of idling.
  EXPECT_EQ(numa.getTask(2), &pool[0]);
  EXPECT_EQ(numa.getTask(2), &pool[1]);
  EXPECT_EQ(numa.getTask(2), nullptr);
  EXPECT_STREQ(numa.policyName(), "numa_fifo");
}

TEST(PolicyTest, NumaFifoConservesAcrossDomainsExactlyOnce) {
  Topology topo;
  topo.numCpus = 8;
  topo.numNumaDomains = 4;
  NumaFifoPolicy numa(topo);
  std::vector<Task> pool(200);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    numa.addTask(&pool[i], i % topo.numCpus);
  }
  std::vector<Task*> all;
  // Mix single and bulk pulls from rotating CPUs.
  Task* out[8];
  std::size_t cpu = 0;
  for (;;) {
    const std::size_t got = numa.getTasks(out, 3, cpu);
    all.insert(all.end(), out, out + got);
    if (Task* t = numa.getTask(cpu)) all.push_back(t);
    else if (got == 0) break;
    cpu = (cpu + 5) % topo.numCpus;
  }
  ASSERT_EQ(all.size(), pool.size());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(all[i], &pool[i]);
}

TEST(PolicyTest, NumaFifoConcurrentAddGetConservesWithoutOuterLock) {
  // ISSUE-9: the per-domain lock hierarchy IS the serialization now —
  // hammer the policy from concurrent producers and consumers pinned to
  // different domains, with NO outer lock, and require exactly-once
  // delivery.  (Every other policy still needs the scheduler's mutual
  // exclusion; NumaFifo must stand alone.)
  Topology topo;
  topo.numCpus = 8;
  topo.numNumaDomains = 4;  // CPUs 2d, 2d+1 -> domain d
  NumaFifoPolicy numa(topo);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 5000;
  std::vector<Task> pool(kProducers * kPerProducer);
  std::vector<std::atomic<int>> popped(pool.size());

  std::atomic<std::size_t> producersLive{kProducers};
  std::atomic<std::size_t> consumed{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p feeds domain p through CPU 2p; single and bulk adds
      // land interleaved with every consumer's pulls.
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        numa.addTask(&pool[p * kPerProducer + i], 2 * p);
      }
      producersLive.fetch_sub(1, std::memory_order_release);
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      // Consumer c is homed on domain c (CPU 2c+1) but drains remote
      // domains too once its own runs dry — the cross-domain fallback
      // path under real concurrency.
      Task* out[8];  // 7 bulk + 1 single per round
      while (consumed.load(std::memory_order_relaxed) < pool.size()) {
        std::size_t got = numa.getTasks(out, 7, 2 * c + 1);
        if (Task* t = numa.getTask(2 * c + 1)) out[got++] = t;
        for (std::size_t i = 0; i < got; ++i) {
          const auto index = static_cast<std::size_t>(out[i] - pool.data());
          popped[index].fetch_add(1, std::memory_order_relaxed);
        }
        if (got != 0) {
          consumed.fetch_add(got, std::memory_order_relaxed);
        } else if (producersLive.load(std::memory_order_acquire) == 0 &&
                   consumed.load(std::memory_order_relaxed) == pool.size()) {
          break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(consumed.load(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(popped[i].load(), 1) << "task " << i
                                   << " delivered zero or multiple times";
  }
}

TEST(PolicyTest, NumaFifoToleratesDegenerateTopology) {
  // A hand-built zero-domain topology must degrade to one global FIFO,
  // not divide by zero inside the domain math.
  Topology topo;
  topo.numCpus = 0;
  topo.numNumaDomains = 0;
  NumaFifoPolicy numa(topo);
  std::vector<Task> pool(3);
  for (auto& t : pool) numa.addTask(&t, 0);
  for (auto& t : pool) EXPECT_EQ(numa.getTask(0), &t);
  EXPECT_EQ(numa.getTask(0), nullptr);
}

TEST(PolicyTest, MakePolicyBuildsEveryKind) {
  const Topology topo = testTopo(4);
  EXPECT_STREQ(makePolicy(PolicyKind::Fifo, topo)->policyName(), "fifo");
  EXPECT_STREQ(makePolicy(PolicyKind::Lifo, topo)->policyName(), "lifo");
  EXPECT_STREQ(makePolicy(PolicyKind::NumaFifo, topo)->policyName(),
               "numa_fifo");
  EXPECT_STREQ(policyKindName(PolicyKind::Fifo), "fifo");
  EXPECT_STREQ(policyKindName(PolicyKind::Lifo), "lifo");
  EXPECT_STREQ(policyKindName(PolicyKind::NumaFifo), "numa_fifo");
}

/// Every policy under the batched SyncScheduler at the bench's thread
/// shape: the conservation law is policy-independent.
class PolicyUnderSchedulerTest
    : public ::testing::TestWithParam<PolicyKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, PolicyUnderSchedulerTest,
                         ::testing::Values(PolicyKind::Fifo, PolicyKind::Lifo,
                                           PolicyKind::NumaFifo),
                         [](const auto& info) {
                           switch (info.param) {
                             case PolicyKind::Fifo: return std::string("Fifo");
                             case PolicyKind::Lifo: return std::string("Lifo");
                             case PolicyKind::NumaFifo:
                               return std::string("NumaFifo");
                           }
                           return std::string("Unknown");
                         });

TEST_P(PolicyUnderSchedulerTest, FloodConservesTasksExactlyOnce) {
  constexpr std::size_t kTasks = 10000;
  constexpr int kConsumers = 3;
  const Topology topo = testTopo(kConsumers + 1);
  SyncScheduler sched(topo, makePolicy(GetParam(), topo),
                      SyncScheduler::Options{});
  std::vector<Task> pool(kTasks);

  std::atomic<std::size_t> retrieved{0};
  std::vector<std::vector<Task*>> got(kConsumers);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (auto& t : pool) sched.addReadyTask(&t, 0);
  });
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t cpu = static_cast<std::size_t>(c) + 1;
      while (retrieved.load(std::memory_order_relaxed) < kTasks) {
        if (Task* t = sched.getReadyTask(cpu); t != nullptr) {
          got[static_cast<std::size_t>(c)].push_back(t);
          retrieved.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Task*> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(all[i], &pool[i]) << "a task was lost or handed out twice";
  }
  EXPECT_EQ(sched.getReadyTask(0), nullptr);
}

}  // namespace
}  // namespace ats
