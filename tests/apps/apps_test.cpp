// The apps layer's verification matrix: every paper app must compute the
// serial answer through its parallel task graph, on both the paper's
// delegation scheduler and the work-stealing stand-in, and verify() must
// actually be able to say no (the corruption test) — a benchmark whose
// checker cannot fail proves nothing.
#include "apps/app.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/runtime.hpp"

namespace ats {
namespace {

RuntimeConfig appTestConfig(SchedulerKind sched) {
  RuntimeConfig config = optimizedConfig(makeTopology(MachinePreset::Host, 4));
  config.scheduler = sched;
  return config;
}

std::string schedName(SchedulerKind kind) {
  return kind == SchedulerKind::SyncDelegation ? "SyncDelegation"
                                               : "WorkStealing";
}

using AppCase = std::tuple<std::string, SchedulerKind>;

class AppVerifyTest : public ::testing::TestWithParam<AppCase> {};

std::vector<AppCase> allAppCases() {
  std::vector<AppCase> cases;
  for (const std::string& name : appNames())
    for (SchedulerKind sched :
         {SchedulerKind::SyncDelegation, SchedulerKind::WorkStealing})
      cases.emplace_back(name, sched);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppVerifyTest,
                         ::testing::ValuesIn(allAppCases()),
                         [](const auto& info) {
                           return std::get<0>(info.param) + "_" +
                                  schedName(std::get<1>(info.param));
                         });

TEST_P(AppVerifyTest, SerialEqualsParallel) {
  const auto& [name, sched] = GetParam();
  auto app = makeApp(name, AppScale::Quick);
  Runtime rt(appTestConfig(sched));

  // A mid-grid block size (real parallelism), then the coarsest — the
  // second run through the same Runtime exercises state re-initialization
  // and dependency-object reuse.
  const auto sizes = app->defaultBlockSizes();
  ASSERT_FALSE(sizes.empty());
  for (const std::size_t bs : {sizes[sizes.size() / 2], sizes.front()}) {
    const AppResult r = app->run(rt, bs);
    EXPECT_TRUE(r.verified)
        << name << " block " << bs << ": maxRelError=" << r.maxRelError
        << " tolerance=" << app->tolerance() << " checksum=" << r.checksum;
    EXPECT_GT(r.tasks, 0u);
    EXPECT_GT(r.workUnits, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.grainWorkUnits(), 0.0);
    EXPECT_GT(r.throughput(), 0.0);
  }
}

TEST(AppCorruptionTest, VerifyRejectsDamagedOutput) {
  // The checker must fail when the answer is wrong — for EVERY app: run
  // once (verified), damage the parallel output, expect rejection.
  Runtime rt(appTestConfig(SchedulerKind::SyncDelegation));
  for (const std::string& name : appNames()) {
    auto app = makeApp(name, AppScale::Quick);
    const std::size_t bs = app->defaultBlockSizes().front();
    const AppResult r = app->run(rt, bs);
    ASSERT_TRUE(r.verified) << name;
    app->corruptOutput();
    const VerifyResult v = app->verify();
    EXPECT_FALSE(v.ok) << name << ": verify() accepted a corrupted answer";
    EXPECT_GT(v.maxRelError, app->tolerance()) << name;
  }
}

TEST(AppFactoryTest, AllPaperNamesResolveAndBlockGridsDivide) {
  EXPECT_EQ(appNames().size(), 8u);
  for (const std::string& name : appNames()) {
    auto app = makeApp(name, AppScale::Quick);
    EXPECT_EQ(app->name(), name);
    const auto sizes = app->defaultBlockSizes();
    ASSERT_GE(sizes.size(), 2u) << name;
    // Coarse -> fine, the runFigure/selectSizes contract.
    for (std::size_t i = 1; i < sizes.size(); ++i)
      EXPECT_LT(sizes[i], sizes[i - 1]) << name << " grid not descending";
    EXPECT_GT(app->totalWorkUnits(), 0.0) << name;
  }
}

TEST(AppFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(makeApp("notanapp", AppScale::Quick), std::invalid_argument);
}

TEST(AppFactoryTest, FullScaleGridsAreCoarserProblemsAreBigger) {
  for (const std::string& name : appNames()) {
    auto quick = makeApp(name, AppScale::Quick);
    auto full = makeApp(name, AppScale::Full);
    EXPECT_GT(full->totalWorkUnits(), quick->totalWorkUnits()) << name;
  }
}

}  // namespace
}  // namespace ats
