#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "instr/noise_injector.hpp"
#include "instr/trace_analyzer.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"
#include "runtime/runtime.hpp"

namespace ats {
namespace {

// ---------------------------------------------------------------- Tracer

TEST(TracerTest, StreamLayoutProvisionsSpawnerAndKernelStreams) {
  Tracer tracer(4, 16);
  EXPECT_EQ(tracer.numCpuStreams(), 4u);
  EXPECT_EQ(tracer.numStreams(), 6u);
  EXPECT_EQ(tracer.spawnerStream(), 4u);
  EXPECT_EQ(tracer.kernelStream(), 5u);
  EXPECT_EQ(tracer.capacityPerStream(), 16u);
}

TEST(TracerTest, RingKeepsOldestRecordsAndCountsDrops) {
  Tracer tracer(1, 4);
  for (std::uint64_t i = 0; i < 7; ++i)
    tracer.emit(0, TraceEvent::TaskStart, i);

  // Keep-oldest, drop-newest: the first `capacity` payloads survive —
  // the head of the window an analyzer reasons from stays trustworthy.
  const std::vector<TraceRecord> records = tracer.collect();
  ASSERT_EQ(records.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].payload, i);
    EXPECT_EQ(records[i].event, TraceEvent::TaskStart);
    EXPECT_EQ(records[i].stream, 0u);
  }
  EXPECT_EQ(tracer.dropped(), 3u);

  // Saturated ring: further emits only move the drop counter.
  tracer.emit(0, TraceEvent::TaskEnd, 99);
  EXPECT_EQ(tracer.dropped(), 4u);
  EXPECT_EQ(tracer.collect().size(), 4u);
}

TEST(TracerTest, ResetRewindsRingsAndDropCountersForReuse) {
  Tracer tracer(1, 4);
  for (std::uint64_t i = 0; i < 6; ++i)
    tracer.emit(0, TraceEvent::TaskStart, i);
  EXPECT_EQ(tracer.dropped(), 2u);

  tracer.reset();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.collect().empty());

  tracer.emit(0, TraceEvent::TaskEnd, 41);
  tracer.emit(0, TraceEvent::TaskEnd, 42);
  const std::vector<TraceRecord> records = tracer.collect();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, 41u);
  EXPECT_EQ(records[1].payload, 42u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, MisdirectedEmitCountsAsDroppedNotCrash) {
  Tracer tracer(1, 4);
  tracer.emit(42, TraceEvent::TaskStart);  // no such stream
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_TRUE(tracer.collect().empty());
}

TEST(TracerTest, CollectMergesStreamsInGlobalTimestampOrder) {
  Tracer tracer(3, 128);
  // Interleave across streams from one thread; the TSC is monotonic
  // here, so the merged order must interleave by time, not by stream.
  for (int round = 0; round < 30; ++round) {
    tracer.emit(static_cast<std::size_t>(round % 3), TraceEvent::TaskStart,
                static_cast<std::uint64_t>(round));
  }
  const std::vector<TraceRecord> records = tracer.collect();
  ASSERT_EQ(records.size(), 30u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].timeNs, records[i - 1].timeNs)
        << "record " << i << " out of order";
  }
  // With strictly increasing emission times the merged payload sequence
  // is exactly the emission sequence; ties (coarse clocks) can only
  // reorder *across* streams, never within one — check per-stream order
  // instead of the full sequence to stay robust on any clock.
  std::uint64_t lastPerStream[3] = {0, 0, 0};
  bool seen[3] = {false, false, false};
  for (const TraceRecord& r : records) {
    if (seen[r.stream]) {
      EXPECT_GT(r.payload, lastPerStream[r.stream]);
    }
    lastPerStream[r.stream] = r.payload;
    seen[r.stream] = true;
  }
}

TEST(TracerTest, ConcurrentEmittersOnDistinctStreamsAreRaceFree) {
  // The single-writer-per-stream contract under TSan: 4 worker threads
  // plus the kernel-stream injector emitting simultaneously, collect()
  // racing the tail of the emission from the main thread.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  Tracer tracer(kThreads, kPerThread + 8);

  std::vector<std::thread> emitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        tracer.emit(t, TraceEvent::TaskStart, i);
    });
  }
  {
    KernelNoiseInjector noise(tracer, /*periodUs=*/500, /*burstUs=*/100,
                              /*targetCpu=*/0);
    (void)tracer.collect();  // mid-emission snapshot must be safe
    for (std::thread& e : emitters) e.join();
    // The emitters can outrun the injector's first period; hold the
    // window open until at least one burst lands so the kernel-stream
    // assertions below are deterministic.
    while (noise.burstsInjected() == 0) std::this_thread::yield();
    noise.stop();
    EXPECT_GE(noise.burstsInjected(), 1u);
  }

  const std::vector<TraceRecord> records = tracer.collect();
  std::uint64_t perStream[kThreads] = {};
  std::uint64_t kernelEvents = 0;
  for (const TraceRecord& r : records) {
    if (r.stream < kThreads)
      ++perStream[r.stream];
    else if (r.stream == tracer.kernelStream())
      ++kernelEvents;
  }
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(perStream[t], kPerThread) << "stream " << t;
  EXPECT_GE(kernelEvents, 2u);  // at least one Enter/Exit pair
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------- TraceWriter

TEST(TraceWriterTest, BinaryRoundTripIsBitExact) {
  Tracer tracer(2, 32);
  tracer.emit(0, TraceEvent::TaskStart, 7);
  tracer.emit(1, TraceEvent::SchedServe, 0);
  tracer.emit(tracer.kernelStream(), TraceEvent::KernelIrqEnter, 1);
  tracer.emit(0, TraceEvent::TaskEnd, 7);
  const std::vector<TraceRecord> written = tracer.collect();

  const std::string path =
      testing::TempDir() + "instr_round_trip.ats";
  ASSERT_TRUE(TraceWriter::writeBinary(path, written));
  std::vector<TraceRecord> reread;
  ASSERT_TRUE(TraceWriter::readBinary(path, reread));
  ASSERT_EQ(reread.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(reread[i].timeNs, written[i].timeNs);
    EXPECT_EQ(reread[i].payload, written[i].payload);
    EXPECT_EQ(reread[i].event, written[i].event);
    EXPECT_EQ(reread[i].stream, written[i].stream);
  }
  std::remove(path.c_str());
}

TEST(TraceWriterTest, ReadRejectsMissingAndCorruptFiles) {
  std::vector<TraceRecord> out;
  EXPECT_FALSE(TraceWriter::readBinary("/nonexistent/nope.ats", out));

  const std::string path = testing::TempDir() + "instr_corrupt.ats";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace", f);
  std::fclose(f);
  EXPECT_FALSE(TraceWriter::readBinary(path, out));
  EXPECT_TRUE(out.empty());

  // Valid header whose record count disagrees with the file's actual
  // size (truncation / bit flip) must fail cleanly, not allocate.
  TraceWriter::BinaryHeader header{};
  std::memcpy(header.magic, TraceWriter::kMagic, sizeof(header.magic));
  header.version = TraceWriter::kVersion;
  header.recordBytes = sizeof(TraceRecord);
  header.recordCount = ~std::uint64_t{0} / sizeof(TraceRecord);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, f), 1u);
  std::fclose(f);
  EXPECT_FALSE(TraceWriter::readBinary(path, out));
  EXPECT_TRUE(out.empty());

  // A stale format version (the v2 flat serve payload, say) must be
  // rejected loudly — silently parsing it would misread every packed
  // SchedServe count.
  header.version = TraceWriter::kVersion - 1;
  header.recordCount = 0;
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, f), 1u);
  std::fclose(f);
  EXPECT_FALSE(TraceWriter::readBinary(path, out));
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

TEST(TraceWriterTest, TextRenderingNamesEveryEvent) {
  std::vector<TraceRecord> records;
  records.push_back({1000, 42, TraceEvent::SchedServe, 2, 0});
  const std::string text = TraceWriter::renderText(records);
  EXPECT_NE(text.find("SchedServe"), std::string::npos);
  EXPECT_NE(text.find("s02"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

// -------------------------------------------------------- TraceAnalyzer

/// Hand-built 1000us trace, 2 worker threads.  Layout (all times us):
///   t0: idle [100, 300], task [400, 500]
///   t1: idle [0, 1000]                      (fully starved)
///   serves at 100, 200, 700 -> gaps 100 and 500
///   irq [600, 650] -> overlaps only the [200, 700] gap
///   drains: payloads 3 and 4
std::vector<TraceRecord> handBuiltTrace() {
  const auto us = [](std::uint64_t v) { return v * 1000; };
  std::vector<TraceRecord> r;
  r.push_back({us(0), 0, TraceEvent::WorkerIdleBegin, 1, 0});
  r.push_back({us(100), 0, TraceEvent::WorkerIdleBegin, 0, 0});
  r.push_back({us(100), 1, TraceEvent::SchedServe, 2, 0});  // spawner stream
  r.push_back({us(150), 3, TraceEvent::SchedDrain, 2, 0});
  r.push_back({us(200), 0, TraceEvent::SchedServe, 2, 0});
  r.push_back({us(300), 0, TraceEvent::WorkerIdleEnd, 0, 0});
  r.push_back({us(400), 0xAB, TraceEvent::TaskStart, 0, 0});
  r.push_back({us(500), 0xAB, TraceEvent::TaskEnd, 0, 0});
  r.push_back({us(600), 0, TraceEvent::KernelIrqEnter, 3, 0});
  r.push_back({us(650), 0, TraceEvent::KernelIrqExit, 3, 0});
  r.push_back({us(700), 1, TraceEvent::SchedServe, 2, 0});
  r.push_back({us(800), 4, TraceEvent::SchedDrain, 2, 0});
  r.push_back({us(1000), 0, TraceEvent::WorkerIdleEnd, 1, 0});
  return r;
}

TEST(TraceAnalyzerTest, ServeGapAndIrqCorrelationMath) {
  const TraceAnalysis a = analyzeTrace(handBuiltTrace(), 2);
  EXPECT_DOUBLE_EQ(a.spanUs, 1000.0);
  EXPECT_EQ(a.recordCount, 13u);
  EXPECT_EQ(a.serveCount, 3u);
  EXPECT_EQ(a.servedTasks, 2u);  // payloads 1 + 0 + 1 (hand-off counts)
  // Legacy-shaped flat payloads are all-local under the v3 packing (the
  // remote half of each payload is zero).
  EXPECT_EQ(a.servedTasksLocal, 2u);
  EXPECT_EQ(a.servedTasksRemote, 0u);
  EXPECT_DOUBLE_EQ(a.crossServeRatio, 0.0);
  EXPECT_EQ(a.drainCount, 2u);
  EXPECT_EQ(a.drainedTasks, 7u);
  EXPECT_EQ(a.irqCount, 1u);
  EXPECT_DOUBLE_EQ(a.irqTotalUs, 50.0);
  // Gaps: 100..200 (no irq) and 200..700 (contains the 600..650 irq).
  EXPECT_DOUBLE_EQ(a.maxServeGapUs, 500.0);
  EXPECT_DOUBLE_EQ(a.maxServeGapDuringIrqUs, 500.0);
}

TEST(TraceAnalyzerTest, UnpacksServeLocalityAndCrossServeRatio) {
  const auto us = [](std::uint64_t v) { return v * 1000; };
  std::vector<TraceRecord> r;
  // Three batched serves with packed local/remote hand-off counts:
  // (3 local, 1 remote), (0, 2), (2, 0) -> 5 local + 3 remote = 8.
  r.push_back({us(0), packServePayload(3, 1), TraceEvent::SchedServe, 0, 0});
  r.push_back({us(10), packServePayload(0, 2), TraceEvent::SchedServe, 1, 0});
  r.push_back({us(20), packServePayload(2, 0), TraceEvent::SchedServe, 0, 0});

  const TraceAnalysis a = analyzeTrace(r, 2);
  EXPECT_EQ(a.serveCount, 3u);
  EXPECT_EQ(a.servedTasksLocal, 5u);
  EXPECT_EQ(a.servedTasksRemote, 3u);
  EXPECT_EQ(a.servedTasks, 8u);
  EXPECT_DOUBLE_EQ(a.crossServeRatio, 3.0 / 8.0);

  const std::string summary = formatAnalysis(a);
  EXPECT_NE(summary.find("served_tasks=8 (local=5 remote=3)"),
            std::string::npos);
  EXPECT_NE(summary.find("cross_serve=37.5%"), std::string::npos);
}

TEST(TraceAnalyzerTest, PerThreadIdleAndTaskAccounting) {
  const TraceAnalysis a = analyzeTrace(handBuiltTrace(), 2);
  ASSERT_EQ(a.threads.size(), 2u);
  EXPECT_DOUBLE_EQ(a.threads[0].idleUs, 200.0);
  EXPECT_DOUBLE_EQ(a.threads[0].busyUs, 100.0);
  EXPECT_EQ(a.threads[0].tasksExecuted, 1u);
  EXPECT_DOUBLE_EQ(a.threads[0].idlePct, 20.0);
  EXPECT_DOUBLE_EQ(a.threads[1].idleUs, 1000.0);
  EXPECT_DOUBLE_EQ(a.threads[1].idlePct, 100.0);
  EXPECT_EQ(a.threads[1].tasksExecuted, 0u);
  EXPECT_DOUBLE_EQ(a.meanIdlePct, 60.0);
}

TEST(TraceAnalyzerTest, UnclosedIdleIntervalChargesToTraceEnd) {
  const auto us = [](std::uint64_t v) { return v * 1000; };
  std::vector<TraceRecord> r;
  r.push_back({us(0), 0, TraceEvent::SchedDrain, 1, 0});
  r.push_back({us(200), 0, TraceEvent::WorkerIdleBegin, 0, 0});
  r.push_back({us(1000), 0, TraceEvent::SchedDrain, 1, 0});
  const TraceAnalysis a = analyzeTrace(r, 1);
  EXPECT_DOUBLE_EQ(a.threads[0].idleUs, 800.0);
  EXPECT_DOUBLE_EQ(a.threads[0].idlePct, 80.0);
}

TEST(TraceAnalyzerTest, EmptyTraceYieldsZeroedAnalysis) {
  const TraceAnalysis a = analyzeTrace({}, 3);
  EXPECT_EQ(a.threads.size(), 3u);
  EXPECT_DOUBLE_EQ(a.spanUs, 0.0);
  EXPECT_DOUBLE_EQ(a.meanIdlePct, 0.0);
  EXPECT_EQ(a.serveCount, 0u);
}

TEST(TraceAnalyzerTest, CountsStealsPerThreadAndOverall) {
  const auto us = [](std::uint64_t v) { return v * 1000; };
  std::vector<TraceRecord> r;
  // Worker 0 runs two tasks it stole (victim slots 1 and 2); worker 1
  // runs one local task; the spawner (stream 2) steals once — counted
  // in the total but not attributed to any worker row.
  r.push_back({us(0), 1, TraceEvent::SchedSteal, 0, 0});
  r.push_back({us(10), 0xA, TraceEvent::TaskStart, 0, 0});
  r.push_back({us(20), 0xA, TraceEvent::TaskEnd, 0, 0});
  r.push_back({us(30), 2, TraceEvent::SchedSteal, 0, 0});
  r.push_back({us(40), 0xB, TraceEvent::TaskStart, 0, 0});
  r.push_back({us(50), 0xB, TraceEvent::TaskEnd, 0, 0});
  r.push_back({us(60), 0xC, TraceEvent::TaskStart, 1, 0});
  r.push_back({us(70), 0xC, TraceEvent::TaskEnd, 1, 0});
  r.push_back({us(80), 0, TraceEvent::SchedSteal, 2, 0});
  r.push_back({us(90), 0xD, TraceEvent::TaskStart, 2, 0});
  r.push_back({us(100), 0xD, TraceEvent::TaskEnd, 2, 0});

  const TraceAnalysis a = analyzeTrace(r, 2);
  EXPECT_EQ(a.stealCount, 3u);
  EXPECT_EQ(a.taskStartCount, 4u);
  EXPECT_DOUBLE_EQ(a.stealRatio, 0.75);
  ASSERT_EQ(a.threads.size(), 2u);
  EXPECT_EQ(a.threads[0].steals, 2u);
  EXPECT_EQ(a.threads[1].steals, 0u);

  const std::string summary = formatAnalysis(a);
  EXPECT_NE(summary.find("steals=3"), std::string::npos);
  EXPECT_NE(summary.find("steal_ratio=75.0%"), std::string::npos);
}

TEST(TraceAnalyzerTest, FormatAndTimelineRenderTheHandBuiltTrace) {
  const std::vector<TraceRecord> records = handBuiltTrace();
  const std::string summary = formatAnalysis(analyzeTrace(records, 2));
  EXPECT_NE(summary.find("cpu00"), std::string::npos);
  EXPECT_NE(summary.find("serves=3"), std::string::npos);
  EXPECT_NE(summary.find("max_serve_gap=500.0us"), std::string::npos);

  const std::string timeline = renderTimeline(records, 2);
  EXPECT_NE(timeline.find('#'), std::string::npos);  // t0's task
  EXPECT_NE(timeline.find('.'), std::string::npos);  // idle stretches
  EXPECT_NE(timeline.find('I'), std::string::npos);  // the kernel burst
  EXPECT_NE(timeline.find("kern"), std::string::npos);
}

// ------------------------------------------------- Runtime integration

TEST(TracedRuntimeTest, TracedAndUntracedRunsExecuteTheSameTaskCount) {
  constexpr int kTasks = 2000;
  constexpr std::size_t kWorkers = 4;

  const auto runBatch = [&](Tracer* tracer) {
    RuntimeConfig cfg =
        optimizedConfig(makeTopology(MachinePreset::Host, kWorkers));
    cfg.tracer = tracer;
    Runtime rt(cfg);
    std::atomic<int> ran{0};
    long long chain = 0;
    for (int i = 0; i < kTasks; ++i) {
      if (i % 4 == 0) {
        rt.spawn({inout(chain)}, [&chain, &ran] {
          ++chain;
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      } else {
        rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    rt.taskwait();
    return ran.load();
  };

  const int untraced = runBatch(nullptr);
  Tracer tracer(kWorkers, 1u << 16);
  const int traced = runBatch(&tracer);
  EXPECT_EQ(untraced, kTasks);
  EXPECT_EQ(traced, kTasks);

  // The trace itself must balance: every started task ended, on the
  // stream it started on (workers and the helping spawner alike).
  const std::vector<TraceRecord> records = tracer.collect();
  EXPECT_EQ(tracer.dropped(), 0u);
  std::uint64_t starts = 0, ends = 0;
  for (const TraceRecord& r : records) {
    if (r.event == TraceEvent::TaskStart) ++starts;
    if (r.event == TraceEvent::TaskEnd) ++ends;
  }
  EXPECT_EQ(starts, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(ends, static_cast<std::uint64_t>(kTasks));

  const TraceAnalysis a = analyzeTrace(records, kWorkers);
  std::uint64_t tasksSeen = 0;
  for (const ThreadTraceStats& t : a.threads) tasksSeen += t.tasksExecuted;
  // Worker streams cover everything except what the spawner helped run.
  EXPECT_LE(tasksSeen, static_cast<std::uint64_t>(kTasks));
  EXPECT_GT(a.recordCount, 0u);
}

TEST(TracedRuntimeTest, EverySchedulerKindEmitsUnderTracing) {
  constexpr int kTasks = 400;
  for (const SchedulerKind kind :
       {SchedulerKind::SyncDelegation, SchedulerKind::PTLockCentral,
        SchedulerKind::CentralMutex, SchedulerKind::WorkStealing}) {
    Tracer tracer(2, 1u << 14);
    RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host, 2));
    cfg.scheduler = kind;
    // Tiny add-buffers force the overflow/contention paths under trace.
    cfg.spscCapacity = 4;
    cfg.tracer = &tracer;
    {
      Runtime rt(cfg);
      std::atomic<int> ran{0};
      for (int i = 0; i < kTasks; ++i)
        rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      rt.taskwait();
      EXPECT_EQ(ran.load(), kTasks);
    }
    std::uint64_t starts = 0;
    for (const TraceRecord& r : tracer.collect())
      if (r.event == TraceEvent::TaskStart) ++starts;
    EXPECT_EQ(starts, static_cast<std::uint64_t>(kTasks))
        << "scheduler kind " << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace ats
