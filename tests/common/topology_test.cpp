#include "common/topology.hpp"

#include <gtest/gtest.h>

namespace ats {
namespace {

TEST(Topology, PresetShapesMatchThePaperMachines) {
  const Topology xeon = makeTopology(MachinePreset::Xeon);
  EXPECT_EQ(xeon.numCpus, 48u);
  EXPECT_EQ(xeon.numNumaDomains, 2u);

  const Topology rome = makeTopology(MachinePreset::Rome);
  EXPECT_EQ(rome.numCpus, 128u);
  EXPECT_EQ(rome.numNumaDomains, 8u);

  const Topology graviton = makeTopology(MachinePreset::Graviton);
  EXPECT_EQ(graviton.numCpus, 64u);
  EXPECT_EQ(graviton.numNumaDomains, 1u);
}

TEST(Topology, HostPresetHasAtLeastOneCpu) {
  const Topology host = makeTopology(MachinePreset::Host);
  EXPECT_GE(host.numCpus, 1u);
  EXPECT_GE(host.numNumaDomains, 1u);
}

TEST(Topology, CpuCountOverrideShrinksDomainsWhenNeeded) {
  const Topology t = makeTopology(MachinePreset::Rome, 4);
  EXPECT_EQ(t.numCpus, 4u);
  EXPECT_LE(t.numNumaDomains, 4u);

  const Topology one = makeTopology(MachinePreset::Xeon, 1);
  EXPECT_EQ(one.numCpus, 1u);
  EXPECT_EQ(one.numNumaDomains, 1u);
}

TEST(Topology, NumaDomainMappingCoversEveryCpu) {
  const Topology rome = makeTopology(MachinePreset::Rome);
  // Block layout: first CPUs land in domain 0, last in the top domain,
  // and every CPU maps to a valid domain.
  EXPECT_EQ(rome.numaDomainOf(0), 0u);
  EXPECT_EQ(rome.numaDomainOf(rome.numCpus - 1), rome.numNumaDomains - 1);
  for (std::size_t cpu = 0; cpu < rome.numCpus; ++cpu) {
    EXPECT_LT(rome.numaDomainOf(cpu), rome.numNumaDomains);
  }
  // Domains are balanced for the even preset shapes.
  EXPECT_EQ(rome.cpusPerDomain(), 16u);
}

TEST(Topology, ReservedSlotsDoNotShiftTheDomainMap) {
  // The Runtime reserves a spawner slot via reservedSlots; a phantom
  // extra "CPU" folded into numCpus instead would change cpusPerDomain
  // (ceil(5/2) = 3) and misclassify worker CPU 2 into domain 0.
  Topology topo;
  topo.numCpus = 4;
  topo.numNumaDomains = 2;
  topo.reservedSlots = 1;
  EXPECT_EQ(topo.slotCount(), 5u);
  EXPECT_EQ(topo.cpusPerDomain(), 2u);  // anchored to the 4 real CPUs
  EXPECT_EQ(topo.numaDomainOf(0), 0u);
  EXPECT_EQ(topo.numaDomainOf(1), 0u);
  EXPECT_EQ(topo.numaDomainOf(2), 1u);
  EXPECT_EQ(topo.numaDomainOf(3), 1u);
  // The reserved slot folds onto a real CPU's domain (slot 4 -> CPU 0).
  EXPECT_EQ(topo.numaDomainOf(4), 0u);
}

TEST(Topology, PresetNames) {
  EXPECT_STREQ(presetName(MachinePreset::Host), "host");
  EXPECT_STREQ(presetName(MachinePreset::Xeon), "xeon");
  EXPECT_STREQ(presetName(MachinePreset::Rome), "rome");
  EXPECT_STREQ(presetName(MachinePreset::Graviton), "graviton");
}

}  // namespace
}  // namespace ats
