#include "common/topology.hpp"

#include <gtest/gtest.h>

namespace ats {
namespace {

TEST(Topology, PresetShapesMatchThePaperMachines) {
  const Topology xeon = makeTopology(MachinePreset::Xeon);
  EXPECT_EQ(xeon.numCpus, 48u);
  EXPECT_EQ(xeon.numNumaDomains, 2u);

  const Topology rome = makeTopology(MachinePreset::Rome);
  EXPECT_EQ(rome.numCpus, 128u);
  EXPECT_EQ(rome.numNumaDomains, 8u);

  const Topology graviton = makeTopology(MachinePreset::Graviton);
  EXPECT_EQ(graviton.numCpus, 64u);
  EXPECT_EQ(graviton.numNumaDomains, 1u);
}

TEST(Topology, HostPresetHasAtLeastOneCpu) {
  const Topology host = makeTopology(MachinePreset::Host);
  EXPECT_GE(host.numCpus, 1u);
  EXPECT_GE(host.numNumaDomains, 1u);
}

TEST(Topology, CpuCountOverrideShrinksDomainsWhenNeeded) {
  const Topology t = makeTopology(MachinePreset::Rome, 4);
  EXPECT_EQ(t.numCpus, 4u);
  EXPECT_LE(t.numNumaDomains, 4u);

  const Topology one = makeTopology(MachinePreset::Xeon, 1);
  EXPECT_EQ(one.numCpus, 1u);
  EXPECT_EQ(one.numNumaDomains, 1u);
}

TEST(Topology, NumaDomainMappingCoversEveryCpu) {
  const Topology rome = makeTopology(MachinePreset::Rome);
  // Block layout: first CPUs land in domain 0, last in the top domain,
  // and every CPU maps to a valid domain.
  EXPECT_EQ(rome.numaDomainOf(0), 0u);
  EXPECT_EQ(rome.numaDomainOf(rome.numCpus - 1), rome.numNumaDomains - 1);
  for (std::size_t cpu = 0; cpu < rome.numCpus; ++cpu) {
    EXPECT_LT(rome.numaDomainOf(cpu), rome.numNumaDomains);
  }
  // Domains are balanced for the even preset shapes.
  EXPECT_EQ(rome.cpusPerDomain(), 16u);
}

TEST(Topology, ReservedSlotsDoNotShiftTheDomainMap) {
  // The Runtime reserves a spawner slot via reservedSlots; a phantom
  // extra "CPU" folded into numCpus instead would change cpusPerDomain
  // (ceil(5/2) = 3) and misclassify worker CPU 2 into domain 0.
  Topology topo;
  topo.numCpus = 4;
  topo.numNumaDomains = 2;
  topo.reservedSlots = 1;
  EXPECT_EQ(topo.slotCount(), 5u);
  EXPECT_EQ(topo.cpusPerDomain(), 2u);  // anchored to the 4 real CPUs
  EXPECT_EQ(topo.numaDomainOf(0), 0u);
  EXPECT_EQ(topo.numaDomainOf(1), 0u);
  EXPECT_EQ(topo.numaDomainOf(2), 1u);
  EXPECT_EQ(topo.numaDomainOf(3), 1u);
  // The reserved slot folds onto a real CPU's domain (slot 4 -> CPU 0).
  EXPECT_EQ(topo.numaDomainOf(4), 0u);
}

TEST(Topology, DomainOfSlotPinsEveryPresetShape) {
  // domainOfSlot is the ONE shared slot→domain rule (NumaFifoPolicy, the
  // work-stealing victim split, and the AddBufferSet shards all route
  // through it); pin every preset's map, including the reserved spawner
  // slot's fold onto domain 0.
  Topology xeon = makeTopology(MachinePreset::Xeon);
  xeon.reservedSlots = 1;
  EXPECT_EQ(xeon.domainOfSlot(0), 0u);
  EXPECT_EQ(xeon.domainOfSlot(23), 0u);
  EXPECT_EQ(xeon.domainOfSlot(24), 1u);
  EXPECT_EQ(xeon.domainOfSlot(47), 1u);
  EXPECT_EQ(xeon.domainOfSlot(48), 0u);  // spawner slot folds

  Topology rome = makeTopology(MachinePreset::Rome);
  rome.reservedSlots = 1;
  EXPECT_EQ(rome.domainOfSlot(0), 0u);
  EXPECT_EQ(rome.domainOfSlot(15), 0u);
  EXPECT_EQ(rome.domainOfSlot(16), 1u);
  EXPECT_EQ(rome.domainOfSlot(127), 7u);
  EXPECT_EQ(rome.domainOfSlot(128), 0u);

  Topology graviton = makeTopology(MachinePreset::Graviton);
  graviton.reservedSlots = 1;
  for (std::size_t slot = 0; slot < graviton.slotCount(); ++slot) {
    EXPECT_EQ(graviton.domainOfSlot(slot), 0u);
  }
}

TEST(Topology, DomainOfSlotAndNumaDomainOfNeverDrift) {
  // numaDomainOf is documented as an exact alias; if the two ever
  // diverge, the policy's queues and the add-buffer shards would
  // disagree about where a slot's tasks live.
  for (const MachinePreset preset :
       {MachinePreset::Xeon, MachinePreset::Rome, MachinePreset::Graviton}) {
    Topology topo = makeTopology(preset);
    topo.reservedSlots = 1;
    for (std::size_t slot = 0; slot < topo.slotCount(); ++slot) {
      EXPECT_EQ(topo.domainOfSlot(slot), topo.numaDomainOf(slot));
      EXPECT_LT(topo.domainOfSlot(slot), topo.numNumaDomains);
    }
  }
}

TEST(Topology, DomainOfSlotToleratesDegenerateShapes) {
  // Hand-built zero shapes must collapse to domain 0, not divide by zero.
  Topology topo;
  topo.numCpus = 0;
  topo.numNumaDomains = 0;
  EXPECT_EQ(topo.domainOfSlot(0), 0u);
  EXPECT_EQ(topo.domainOfSlot(7), 0u);
}

TEST(Topology, PresetNames) {
  EXPECT_STREQ(presetName(MachinePreset::Host), "host");
  EXPECT_STREQ(presetName(MachinePreset::Xeon), "xeon");
  EXPECT_STREQ(presetName(MachinePreset::Rome), "rome");
  EXPECT_STREQ(presetName(MachinePreset::Graviton), "graviton");
}

}  // namespace
}  // namespace ats
