#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ats {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ATS_TEST_KNOB"); }

  static void set(const char* v) { setenv("ATS_TEST_KNOB", v, 1); }
};

TEST_F(EnvTest, FlagUnsetIsFalse) {
  unsetenv("ATS_TEST_KNOB");
  EXPECT_FALSE(envFlag("ATS_TEST_KNOB"));
}

TEST_F(EnvTest, FlagRecognizesOffSpellings) {
  for (const char* off : {"", "0", "false", "off", "no"}) {
    set(off);
    EXPECT_FALSE(envFlag("ATS_TEST_KNOB")) << "value: '" << off << "'";
  }
  for (const char* on : {"1", "true", "on", "yes", "anything"}) {
    set(on);
    EXPECT_TRUE(envFlag("ATS_TEST_KNOB")) << "value: '" << on << "'";
  }
}

TEST_F(EnvTest, SizeParsesDecimalAndFallsBackOnGarbage) {
  unsetenv("ATS_TEST_KNOB");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
  set("48");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 48u);
  set("0");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 0u);
  set("12abc");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
  set("notanumber");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
  // strtoull would happily wrap these to huge values; the contract says
  // fallback.
  set("-1");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
  set("+4");
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
  set("99999999999999999999999999");  // out of range
  EXPECT_EQ(envSize("ATS_TEST_KNOB", 7), 7u);
}

TEST_F(EnvTest, StringFallsBackWhenUnset) {
  unsetenv("ATS_TEST_KNOB");
  EXPECT_EQ(envString("ATS_TEST_KNOB", "dflt"), "dflt");
  set("trace_dir");
  EXPECT_EQ(envString("ATS_TEST_KNOB", "dflt"), "trace_dir");
}

}  // namespace
}  // namespace ats
