#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace ats {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations is 32.
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, ShiftInvarianceUnderLargeOffsets) {
  // Welford's point: a huge common offset must not destroy the variance.
  RunningStats s;
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 1e9 + 10);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

}  // namespace
}  // namespace ats
