// Failpoint semantics: arm/disarm, probability and count gates, spec
// parsing, and the macro's unarmed fast path.  Each TEST runs in its own
// process (gtest_discover_tests), so tests may arm global state freely as
// long as they disarm on exit paths they share.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"

namespace ats {
namespace {

// A test-owned chokepoint: evaluates the macro exactly like a planted
// site would, returning whether this pass threw.
bool hitTestSite() {
  try {
    ATS_FAILPOINT(test_site);
    return false;
  } catch (const FailpointError&) {
    return true;
  }
}

Failpoint& testSite() {
  return FailpointRegistry::instance().site("test_site");
}

TEST(FailpointTest, SiteIsFindOrCreateWithStableNonZeroIds) {
  Failpoint& a = FailpointRegistry::instance().site("fp_alpha");
  Failpoint& b = FailpointRegistry::instance().site("fp_beta");
  EXPECT_NE(&a, &b);
  EXPECT_NE(a.id(), 0u) << "0 means 'not a failpoint' in trace payloads";
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(&a, &FailpointRegistry::instance().site("fp_alpha"));
  EXPECT_EQ(a.name(), "fp_alpha");
}

TEST(FailpointTest, UnarmedSiteNeverEvaluates) {
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(hitTestSite());
  EXPECT_EQ(testSite().evaluations(), 0u)
      << "unarmed passes must not reach the slow path at all";
}

TEST(FailpointTest, CountBudgetFiresExactlyNThenSelfDisarms) {
  testSite().arm(FailpointMode::Throw, 1.0, 3);
  int thrown = 0;
  for (int i = 0; i < 100; ++i) thrown += hitTestSite() ? 1 : 0;
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(testSite().fires(), 3u);
  EXPECT_FALSE(testSite().armed()) << "budget spent => back to one-load path";
}

TEST(FailpointTest, ZeroCountMeansUnlimited) {
  testSite().arm(FailpointMode::Throw, 1.0, 0);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(hitTestSite());
  EXPECT_TRUE(testSite().armed());
  testSite().disarm();
  EXPECT_FALSE(hitTestSite());
}

TEST(FailpointTest, ProbabilityZeroEvaluatesButNeverFires) {
  testSite().arm(FailpointMode::Throw, 0.0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(hitTestSite());
  EXPECT_EQ(testSite().evaluations(), 1000u);
  EXPECT_EQ(testSite().fires(), 0u);
  testSite().disarm();
}

TEST(FailpointTest, FractionalProbabilityFiresRoughlyProportionally) {
  testSite().arm(FailpointMode::Throw, 0.5, 0);
  int thrown = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) thrown += hitTestSite() ? 1 : 0;
  testSite().disarm();
  // 0.5 +- 5 sigma on 4000 Bernoulli trials: [1842, 2158].
  EXPECT_GT(thrown, 1842);
  EXPECT_LT(thrown, 2158);
}

TEST(FailpointTest, CountBudgetIsExactUnderConcurrency) {
  constexpr std::uint64_t kBudget = 64;
  testSite().resetCounters();
  testSite().arm(FailpointMode::Throw, 1.0, kBudget);
  std::atomic<int> thrown{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&thrown] {
      for (int i = 0; i < 1000; ++i)
        if (hitTestSite()) thrown.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(thrown.load(), static_cast<int>(kBudget))
      << "racing threads must not overshoot (or undershoot) the budget";
  EXPECT_EQ(testSite().fires(), kBudget);
}

TEST(FailpointTest, DelayModeSleepsInsteadOfThrowing) {
  testSite().arm(FailpointMode::DelayUs, 1.0, 2, /*delayUs=*/100);
  EXPECT_FALSE(hitTestSite());
  EXPECT_FALSE(hitTestSite());
  EXPECT_EQ(testSite().fires(), 2u);
  EXPECT_FALSE(testSite().armed());
}

TEST(FailpointTest, ArmFromSpecParsesAllFields) {
  auto& registry = FailpointRegistry::instance();
  EXPECT_TRUE(registry.armFromSpec("spec_fp:0.25:7"));
  Failpoint& fp = registry.site("spec_fp");
  EXPECT_TRUE(fp.armed());
  EXPECT_EQ(fp.mode(), FailpointMode::Throw) << "throw is the default mode";
  fp.disarm();

  EXPECT_TRUE(registry.armFromSpec("spec_fp:1:1:delay-us:250"));
  EXPECT_EQ(fp.mode(), FailpointMode::DelayUs);
  fp.disarm();

  EXPECT_TRUE(registry.armFromSpec("spec_fp:1:1:abort"));
  EXPECT_EQ(fp.mode(), FailpointMode::Abort);
  fp.disarm();
}

TEST(FailpointTest, ArmFromSpecRejectsMalformedInput) {
  auto& registry = FailpointRegistry::instance();
  EXPECT_FALSE(registry.armFromSpec(""));
  EXPECT_FALSE(registry.armFromSpec("justname"));
  EXPECT_FALSE(registry.armFromSpec("name:0.5"));          // missing count
  EXPECT_FALSE(registry.armFromSpec(":0.5:0"));            // empty name
  EXPECT_FALSE(registry.armFromSpec("name:notanum:0"));    // bad prob
  EXPECT_FALSE(registry.armFromSpec("name:1.5:0"));        // prob > 1
  EXPECT_FALSE(registry.armFromSpec("name:-0.1:0"));       // prob < 0
  EXPECT_FALSE(registry.armFromSpec("name:0.5:x"));        // bad count
  EXPECT_FALSE(registry.armFromSpec("name:0.5:0:explode"));  // bad mode
  EXPECT_FALSE(registry.armFromSpec("name:1:1:delay-us:zz"));  // bad delay
  EXPECT_FALSE(registry.armFromSpec("a:1:1:throw:0:extra"));   // 6 fields
}

TEST(FailpointTest, DisarmAllSweepsEveryNode) {
  auto& registry = FailpointRegistry::instance();
  registry.arm("sweep_a", FailpointMode::Throw, 1.0, 0);
  registry.arm("sweep_b", FailpointMode::DelayUs, 1.0, 0, 10);
  registry.disarmAll();
  for (Failpoint* fp : registry.all()) EXPECT_FALSE(fp->armed());
}

TEST(FailpointTest, ErrorCarriesTheSiteRegistryId) {
  testSite().arm(FailpointMode::Throw, 1.0, 1);
  try {
    ATS_FAILPOINT(test_site);
    FAIL() << "armed prob-1 site must throw";
  } catch (const FailpointError& error) {
    EXPECT_EQ(error.id(), testSite().id());
    EXPECT_NE(std::string(error.what()).find("test_site"),
              std::string::npos);
  }
}

TEST(FailpointAbortDeathTest, AbortModeDiesThroughFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  testSite().arm(FailpointMode::Abort, 1.0, 1);
  EXPECT_DEATH(hitTestSite(), "ats: FATAL .*failpoint 'test_site' fired");
}

}  // namespace
}  // namespace ats
