#include "containers/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ats {
namespace {

TEST(ChaseLevDequeTest, StartsEmpty) {
  ChaseLevDeque<int> deque;
  int out = 0;
  EXPECT_FALSE(deque.pop(out));
  EXPECT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Empty);
  EXPECT_TRUE(deque.emptyApprox());
  EXPECT_EQ(deque.sizeApprox(), 0u);
}

TEST(ChaseLevDequeTest, OwnerPopIsLifo) {
  ChaseLevDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.push(i);
  EXPECT_EQ(deque.sizeApprox(), 10u);
  for (int i = 9; i >= 0; --i) {
    int out = -1;
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(deque.pop(out));
}

TEST(ChaseLevDequeTest, StealIsFifo) {
  ChaseLevDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.push(i);
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Empty);
}

TEST(ChaseLevDequeTest, MixedEndsMeetInTheMiddle) {
  ChaseLevDeque<int> deque;
  for (int i = 0; i < 6; ++i) deque.push(i);
  int out = -1;
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 5);
  ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 4);
  ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 3);
  ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(deque.pop(out));
  EXPECT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Empty);
}

TEST(ChaseLevDequeTest, GrowsPastInitialCapacityPreservingOrder) {
  ChaseLevDeque<int> deque(2);
  const std::size_t initial = deque.capacity();
  constexpr int kCount = 1000;
  for (int i = 0; i < kCount; ++i) deque.push(i);
  EXPECT_GT(deque.capacity(), initial);
  EXPECT_EQ(deque.sizeApprox(), static_cast<std::size_t>(kCount));
  // Steal order must be the push order across every growth boundary.
  for (int i = 0; i < kCount; ++i) {
    int out = -1;
    ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
    ASSERT_EQ(out, i);
  }
}

TEST(ChaseLevDequeTest, GrowKeepsLiveWindowAfterWrap) {
  // Drive the indices around the ring before growing, so the live
  // window [top, bottom) straddles a wrap when it is copied.
  ChaseLevDeque<int> deque(4);
  const std::size_t cap = deque.capacity();
  int out = -1;
  // Advance both indices by 3/4 of the ring.
  for (std::size_t i = 0; i < cap - 1; ++i) {
    deque.push(-1);
    ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
  }
  // Fill to capacity (wrapping), then one more push forces the grow.
  const int kCount = static_cast<int>(cap) + 1;
  for (int i = 0; i < kCount; ++i) deque.push(i);
  for (int i = kCount - 1; i >= 0; --i) {
    ASSERT_TRUE(deque.pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(deque.pop(out));
}

/// The race window the one fence + one CAS exist for: when the deque
/// holds exactly one element, a pop and a steal compete for it through
/// the CAS on top.  Single-threaded interleavings of the surrounding
/// states must all resolve to exactly-once.
TEST(ChaseLevDequeTest, LastElementGoesToExactlyOneEnd) {
  // Owner side wins when it runs the protocol alone.
  {
    ChaseLevDeque<int> deque;
    deque.push(7);
    int out = -1;
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, 7);
    EXPECT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Empty);
  }
  // Thief side wins when it completes first; the owner's pop then
  // reports empty, not a duplicate.
  {
    ChaseLevDeque<int> deque;
    deque.push(7);
    int out = -1;
    ASSERT_EQ(deque.steal(out), ChaseLevDeque<int>::StealResult::Success);
    EXPECT_EQ(out, 7);
    int dup = -1;
    EXPECT_FALSE(deque.pop(dup));
  }
  // Alternating winners over a long sequence: every element goes to
  // exactly one end, none twice, none lost.
  {
    ChaseLevDeque<int> deque;
    std::vector<bool> seen(200, false);
    for (int i = 0; i < 200; ++i) {
      deque.push(i);
      int out = -1;
      if (i % 2 == 0) {
        ASSERT_TRUE(deque.pop(out));
      } else {
        ASSERT_EQ(deque.steal(out),
                  ChaseLevDeque<int>::StealResult::Success);
      }
      ASSERT_FALSE(seen[static_cast<std::size_t>(out)]);
      seen[static_cast<std::size_t>(out)] = true;
      ASSERT_EQ(out, i);
    }
  }
}

/// Two real threads hammering the one-element race: the owner push+pops
/// a single element per round while a thief spins stealing.  Every
/// element must be claimed by exactly one side.  This is the
/// deterministic-shape version of the race-window walk above — the
/// interleaving varies run to run, but the exactly-once invariant is
/// checked on every single element.
TEST(ChaseLevDequeTest, OwnerPopVersusThiefStealNeverDuplicates) {
  constexpr std::int64_t kRounds = 200000;
  ChaseLevDeque<std::int64_t> deque;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> stolenCount{0};
  std::vector<std::int64_t> stolen;
  stolen.reserve(static_cast<std::size_t>(kRounds));

  std::thread thief([&] {
    std::int64_t out = -1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (deque.steal(out) == ChaseLevDeque<std::int64_t>::StealResult::
                                  Success) {
        stolen.push_back(out);
        stolenCount.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::int64_t> popped;
  popped.reserve(static_cast<std::size_t>(kRounds));
  for (std::int64_t i = 0; i < kRounds; ++i) {
    deque.push(i);
    std::int64_t out = -1;
    if (deque.pop(out)) popped.push_back(out);
    // else: the thief won the CAS on the single element.
  }
  // Wait until every element is accounted for before stopping the
  // thief (a pushed element the owner lost must surface on the thief).
  while (popped.size() +
             static_cast<std::size_t>(
                 stolenCount.load(std::memory_order_relaxed)) <
         static_cast<std::size_t>(kRounds)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  thief.join();

  std::vector<std::int64_t> all = popped;
  all.insert(all.end(), stolen.begin(), stolen.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kRounds));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kRounds; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i)
        << "an element was duplicated or lost at the one-element race";
  }
}

/// 8 threads, exactly-once conservation, with a tiny initial capacity so
/// the owner grows the array many times WHILE thieves are mid-steal —
/// the use-after-free hazard the retire-list exists for, and the
/// stale-array read the CAS validation exists for.  Run under TSan/ASan
/// in the sanitizer CI jobs.
TEST(ChaseLevDequeTest, ManyThievesConserveUnderGrowth) {
  constexpr std::int64_t kCount = 100000;
  constexpr int kThieves = 7;  // + 1 owner = 8 threads
  ChaseLevDeque<std::int64_t> deque(2);  // forces ~16 grows
  std::atomic<std::int64_t> taken{0};
  std::vector<std::vector<std::int64_t>> got(kThieves + 1);

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // owner: bursts of pushes, occasional pops
    std::int64_t next = 0;
    while (next < kCount) {
      const std::int64_t burst = std::min<std::int64_t>(64, kCount - next);
      for (std::int64_t i = 0; i < burst; ++i) deque.push(next++);
      std::int64_t out = -1;
      for (int i = 0; i < 8; ++i) {
        if (deque.pop(out)) {
          got[0].push_back(out);
          taken.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Drain what the thieves leave behind.
    std::int64_t out = -1;
    while (taken.load(std::memory_order_relaxed) < kCount) {
      if (deque.pop(out)) {
        got[0].push_back(out);
        taken.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int c = 0; c < kThieves; ++c) {
    threads.emplace_back([&, c] {
      std::int64_t out = -1;
      while (taken.load(std::memory_order_relaxed) < kCount) {
        switch (deque.steal(out)) {
          case ChaseLevDeque<std::int64_t>::StealResult::Success:
            got[static_cast<std::size_t>(c) + 1].push_back(out);
            taken.fetch_add(1, std::memory_order_relaxed);
            break;
          case ChaseLevDeque<std::int64_t>::StealResult::Empty:
            std::this_thread::yield();
            break;
          case ChaseLevDeque<std::int64_t>::StealResult::Abort:
            break;  // lost the CAS; retry immediately
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(deque.capacity(), 2u);  // growth actually happened
  std::vector<std::int64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kCount));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i)
        << "conservation broke under concurrent growth";
  }
}

}  // namespace
}  // namespace ats
