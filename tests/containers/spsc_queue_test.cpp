#include "containers/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace ats {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscQueue<int>(256).capacity(), 256u);
}

TEST(SpscQueue, PushPopPreservesValuesAcrossWrapAround) {
  SpscQueue<std::uint64_t> q(8);
  std::uint64_t nextPush = 0;
  std::uint64_t nextPop = 0;
  // Uneven push/pop cadence over many times the capacity, so the
  // free-running indices wrap the mask repeatedly at shifting offsets.
  for (int round = 0; round < 1000; ++round) {
    const int pushes = 1 + round % 3;
    for (int p = 0; p < pushes; ++p) {
      if (q.push(nextPush)) ++nextPush;
    }
    std::uint64_t v = 0;
    ASSERT_TRUE(q.pop(v));
    ASSERT_EQ(v, nextPop);
    ++nextPop;
  }
  std::uint64_t v = 0;
  while (q.pop(v)) {
    ASSERT_EQ(v, nextPop);
    ++nextPop;
  }
  EXPECT_EQ(nextPop, nextPush);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, SimpleFifoOrderThroughWrap) {
  SpscQueue<int> q(4);
  int expectedNext = 0;
  int pushedNext = 0;
  for (int round = 0; round < 50; ++round) {
    while (q.push(pushedNext)) ++pushedNext;
    int v = -1;
    while (q.pop(v)) {
      ASSERT_EQ(v, expectedNext);
      ++expectedNext;
    }
  }
  EXPECT_EQ(expectedNext, pushedNext);
}

TEST(SpscQueue, FullQueueRejectsPushUntilPop) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));
  EXPECT_FALSE(q.push(99));
  EXPECT_EQ(q.size(), 4u);

  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.push(4));  // slot freed
  EXPECT_FALSE(q.push(5)); // and full again
}

TEST(SpscQueue, ConsumeAllDrainsBatchInOrder) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i));

  std::vector<int> got;
  const std::size_t n = q.consumeAll([&](int v) { got.push_back(v); });
  EXPECT_EQ(n, 10u);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(q.empty());

  // Empty drain is a no-op returning zero.
  EXPECT_EQ(q.consumeAll([&](int v) { got.push_back(v); }), 0u);
  EXPECT_EQ(got.size(), 10u);
}

TEST(SpscQueue, ConsumeNDrainsBoundedPrefixInOrder) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i));

  std::vector<int> got;
  EXPECT_EQ(q.consumeN(4, [&](int v) { got.push_back(v); }), 4u);
  EXPECT_EQ(q.size(), 6u);
  // What stayed behind is still published, still FIFO; an over-large cap
  // degrades to consumeAll.
  EXPECT_EQ(q.consumeN(100, [&](int v) { got.push_back(v); }), 6u);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(q.empty());

  // Empty drain and zero-cap drain are no-ops returning zero.
  EXPECT_EQ(q.consumeN(4, [](int) {}), 0u);
  ASSERT_TRUE(q.push(42));
  EXPECT_EQ(q.consumeN(0, [](int) {}), 0u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(SpscQueue, ConsumeNAcrossWrapAround) {
  SpscQueue<int> q(4);  // tiny capacity: every partial drain straddles the mask
  int pushed = 0;
  int expected = 0;
  for (int round = 0; round < 40; ++round) {
    while (q.push(pushed)) ++pushed;
    const std::size_t drained = q.consumeN(3, [&](int v) {
      ASSERT_EQ(v, expected);
      ++expected;
    });
    ASSERT_LE(drained, 3u);
  }
  q.consumeAll([&](int v) {
    ASSERT_EQ(v, expected);
    ++expected;
  });
  EXPECT_EQ(expected, pushed);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(4);
  ASSERT_TRUE(q.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscQueue, CrossThreadStressPreservesSequence) {
  // Tight ring so both full and empty edges are hit constantly.
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> q(64);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!q.push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t v = 0;
    if (q.pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, CrossThreadConsumeAllStress) {
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> q(128);

  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      while (!q.push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t prev = 0;
  while (count < kItems) {
    const std::size_t n = q.consumeAll([&](std::uint64_t v) {
      ASSERT_EQ(v, prev + 1);  // batches must stay ordered and gapless
      prev = v;
      sum += v;
    });
    count += n;
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace ats
