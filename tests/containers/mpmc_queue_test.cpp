#include "containers/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ats {
namespace {

TEST(MpmcQueue, SingleThreadFifo) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));  // full
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  int v = -1;
  EXPECT_FALSE(q.pop(v));  // empty
}

TEST(MpmcQueue, WrapAroundManyLaps) {
  MpmcQueue<int> q(4);
  int next = 0;
  int expected = 0;
  for (int lap = 0; lap < 100; ++lap) {
    ASSERT_TRUE(q.push(next++));
    ASSERT_TRUE(q.push(next++));
    int v = -1;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, expected++);
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, expected++);
  }
}

TEST(MpmcQueue, MultiProducerMultiConsumerConservesSum) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 10000;
  MpmcQueue<std::uint64_t> q(256);

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> threads;

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        while (!q.push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      const std::uint64_t total = kProducers * kPerProducer;
      while (popped.load(std::memory_order_relaxed) < total) {
        std::uint64_t v = 0;
        if (q.pop(v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  std::uint64_t v = 0;
  EXPECT_FALSE(q.pop(v));
}

}  // namespace
}  // namespace ats
