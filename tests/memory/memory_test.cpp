#include "memory/pool_allocator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "containers/mpmc_queue.hpp"
#include "memory/system_allocator.hpp"

namespace ats {
namespace {

bool isFundamentallyAligned(void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Allocator::kAlignment == 0;
}

/// Run `fn` on a brand-new thread so it starts from a thread cache with
/// empty magazines — magazine-geometry assertions need that determinism
/// (the main gtest thread's cache accumulates state across tests).
template <typename Fn>
void onFreshThread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

TEST(SystemAllocatorTest, RoundTripsAndAligns) {
  SystemAllocator& alloc = SystemAllocator::instance();
  EXPECT_STREQ(alloc.name(), "system");
  for (std::size_t size : {1u, 17u, 256u, 8192u, 100000u}) {
    void* p = alloc.allocate(size);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(isFundamentallyAligned(p));
    std::memset(p, 0xAB, size);
    alloc.deallocate(p, size);
  }
}

TEST(PoolAllocatorTest, SizeClassTableIsSaneAtBoundaries) {
  std::size_t prev = 0;
  for (std::size_t size = 0; size <= PoolAllocator::kMaxPooledSize;
       ++size) {
    const std::size_t block = PoolAllocator::blockSizeFor(size);
    ASSERT_GE(block, size + PoolAllocator::kHeaderBytes)
        << "class too small for request " << size;
    ASSERT_GE(block, prev) << "class table not monotonic at " << size;
    ASSERT_EQ(block % Allocator::kAlignment, 0u)
        << "class " << block << " would misalign user pointers";
    prev = block;
  }
  // One past the pooled ceiling falls through to operator new.
  EXPECT_EQ(PoolAllocator::blockSizeFor(PoolAllocator::kMaxPooledSize + 1),
            0u);
}

TEST(PoolAllocatorTest, AlignmentAndWritabilityAcrossClassesAndLargePath) {
  PoolAllocator& pool = PoolAllocator::instance();
  EXPECT_STREQ(pool.name(), "pool");
  // Class boundaries (block-16 and block-16+1 for every class size),
  // plus the operator-new fallthrough sizes.
  std::vector<std::size_t> sizes = {1, 15, 16, 17, 255, 256, 257};
  for (std::size_t s = 32; s <= PoolAllocator::kMaxBlockSize; s *= 2) {
    sizes.push_back(s - PoolAllocator::kHeaderBytes);
    sizes.push_back(s - PoolAllocator::kHeaderBytes + 1);
  }
  sizes.push_back(PoolAllocator::kMaxPooledSize);
  sizes.push_back(PoolAllocator::kMaxPooledSize + 1);
  sizes.push_back(1 << 20);

  for (std::size_t size : sizes) {
    void* p = pool.allocate(size);
    ASSERT_NE(p, nullptr) << "size " << size;
    EXPECT_TRUE(isFundamentallyAligned(p)) << "size " << size;
    std::memset(p, 0xCD, size);  // every byte must be ours
    pool.deallocate(p, size);
  }
}

TEST(PoolAllocatorTest, MagazineRefillsInBatchesAndRecyclesLifo) {
  onFreshThread([] {
    PoolAllocator& pool = PoolAllocator::instance();
    // A class the runtime's descriptor/closure churn does not use, so
    // depot/magazine counts are all ours.
    constexpr std::size_t kSize = 6000;

    // First allocation forces a refill of kRefillBatch blocks: one
    // comes back to us, the rest sit in the magazine.
    void* p = pool.allocate(kSize);
    EXPECT_EQ(pool.testLocalMagazineFill(kSize),
              PoolAllocator::kRefillBatch - 1);

    // Same-thread free goes back to the magazine (LIFO), and the next
    // allocation returns exactly that block without any refill.
    pool.deallocate(p, kSize);
    EXPECT_EQ(pool.testLocalMagazineFill(kSize),
              PoolAllocator::kRefillBatch);
    void* q = pool.allocate(kSize);
    EXPECT_EQ(q, p);
    pool.deallocate(q, kSize);
  });
}

TEST(PoolAllocatorTest, MagazineOverflowFlushesBatchToDepot) {
  onFreshThread([] {
    PoolAllocator& pool = PoolAllocator::instance();
    constexpr std::size_t kSize = 6000;

    // Hold enough live blocks to overfill one magazine when freed.
    constexpr std::size_t kLive = PoolAllocator::kMagazineCapacity + 8;
    void* live[kLive];
    for (void*& p : live) p = pool.allocate(kSize);

    const std::size_t depotBefore = pool.testDepotFree(kSize);
    for (void* p : live) pool.deallocate(p, kSize);

    // The magazine capped at kMagazineCapacity; the overflow triggered
    // at least one kFlushBatch spill to the central depot.
    EXPECT_LE(pool.testLocalMagazineFill(kSize),
              PoolAllocator::kMagazineCapacity);
    EXPECT_GE(pool.testDepotFree(kSize),
              depotBefore + PoolAllocator::kFlushBatch);
  });
}

TEST(PoolAllocatorTest, RemoteFreesDrainOnRefill) {
  PoolAllocator& pool = PoolAllocator::instance();
  constexpr std::size_t kSize = 6000;
  constexpr std::size_t kBlocks = 16;

  std::vector<void*> blocks(kBlocks);
  std::atomic<bool> freed{false};

  onFreshThread([&] {
    // T0 (this fresh thread) allocates and publishes, then waits for
    // the remote frees to land on its cache's remote list...
    for (void*& p : blocks) p = pool.allocate(kSize);

    std::thread t1([&] {
      for (void* p : blocks) pool.deallocate(p, kSize);
      freed.store(true, std::memory_order_release);
    });
    t1.join();
    ASSERT_TRUE(freed.load(std::memory_order_acquire));
    EXPECT_EQ(pool.testRemotePendingOnCaller(), kBlocks);

    // ...then drains the whole list the next time a magazine refills.
    // Drain the magazine's leftovers first so the next allocate must
    // refill.
    std::vector<void*> warm;
    while (pool.testLocalMagazineFill(kSize) > 0)
      warm.push_back(pool.allocate(kSize));
    void* p = pool.allocate(kSize);
    EXPECT_EQ(pool.testRemotePendingOnCaller(), 0u);
    pool.deallocate(p, kSize);
    for (void* w : warm) pool.deallocate(w, kSize);
  });
}

TEST(PoolAllocatorTest, ReuseAfterFreeIsPoisoned) {
  PoolAllocator& pool = PoolAllocator::instance();
  const bool wasPoisoning = pool.poisoningEnabled();
  pool.setPoisoning(true);

  constexpr std::size_t kSize = 200;
  unsigned char* p = static_cast<unsigned char*>(pool.allocate(kSize));
  std::memset(p, 0xAB, kSize);
  pool.deallocate(p, kSize);

  // LIFO magazine hands the same block straight back — and every byte
  // of the old payload must be gone.
  unsigned char* q = static_cast<unsigned char*>(pool.allocate(kSize));
  ASSERT_EQ(q, p);
  for (std::size_t i = 0; i < kSize; ++i) {
    ASSERT_EQ(q[i], PoolAllocator::kPoisonByte)
        << "stale byte survived free at offset " << i;
  }
  pool.deallocate(q, kSize);
  pool.setPoisoning(wasPoisoning);
}

TEST(PoolAllocatorTest, ThreadDomainRoutesDepotTrafficToItsShard) {
  onFreshThread([] {
    PoolAllocator& pool = PoolAllocator::instance();
    constexpr std::size_t kSize = 6000;
    constexpr std::size_t kShard = 3;

    // Fresh threads start on shard 0; rebinding to domain 3 must move
    // this thread's flush traffic onto shard 3 and leave the rest alone.
    EXPECT_EQ(pool.testCallerDepotShard(), 0u);
    pool.setThreadDomain(kShard);
    EXPECT_EQ(pool.testCallerDepotShard(), kShard);

    std::size_t othersBefore = 0;
    for (std::size_t s = 0; s < PoolAllocator::kNumDepotShards; ++s) {
      if (s != kShard) othersBefore += pool.testDepotFreeOnShard(kSize, s);
    }
    const std::size_t shardBefore = pool.testDepotFreeOnShard(kSize, kShard);

    // Overfill one magazine so freeing everything spills kFlushBatch
    // blocks into the depot — all of it on OUR shard.
    constexpr std::size_t kLive = PoolAllocator::kMagazineCapacity + 8;
    void* live[kLive];
    for (void*& p : live) p = pool.allocate(kSize);
    for (void* p : live) pool.deallocate(p, kSize);

    EXPECT_GE(pool.testDepotFreeOnShard(kSize, kShard),
              shardBefore + PoolAllocator::kFlushBatch);
    std::size_t othersAfter = 0;
    for (std::size_t s = 0; s < PoolAllocator::kNumDepotShards; ++s) {
      if (s != kShard) othersAfter += pool.testDepotFreeOnShard(kSize, s);
    }
    EXPECT_EQ(othersAfter, othersBefore)
        << "a domain-bound thread leaked depot traffic onto foreign shards";
  });
}

TEST(PoolAllocatorTest, ThreadDomainWrapsAroundTheShardCount) {
  onFreshThread([] {
    PoolAllocator& pool = PoolAllocator::instance();
    // More domains than shards (a 16-domain box, say) must fold modulo
    // kNumDepotShards, never index out of the shard array.
    pool.setThreadDomain(PoolAllocator::kNumDepotShards + 2);
    EXPECT_EQ(pool.testCallerDepotShard(), 2u);
    pool.setThreadDomain(0);
    EXPECT_EQ(pool.testCallerDepotShard(), 0u);
  });
}

/// Four threads on four distinct shards churning the same size class:
/// shards must keep them off each other's locks (TSan co-asserts the
/// locking is still right) and blocks must keep round-tripping — the
/// sharding must not turn recycling into unbounded slab growth.
TEST(PoolAllocatorTest, CrossDomainChurnConservesBlocksAcrossShards) {
  PoolAllocator& pool = PoolAllocator::instance();
  constexpr std::size_t kSize = 3000;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  constexpr std::size_t kLive = PoolAllocator::kMagazineCapacity + 8;

  const std::size_t reservedBefore = pool.reservedBytes();
  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&pool, t] {
      pool.setThreadDomain(static_cast<std::size_t>(t));
      std::vector<void*> live(kLive);
      for (int round = 0; round < kRounds; ++round) {
        for (void*& p : live) p = pool.allocate(kSize);
        for (void* p : live) pool.deallocate(p, kSize);
      }
    });
  }
  for (std::thread& t : churners) t.join();

  // Each thread held kLive blocks at once; growth must reflect that
  // window times the shard count, not the round count.
  const std::size_t grown = pool.reservedBytes() - reservedBefore;
  EXPECT_LT(grown, 16u * 1024 * 1024)
      << "per-domain shards are hoarding instead of recycling";
}

/// 8-thread cross-thread free stress: T0 allocates task-descriptor-
/// sized blocks and ships them through a shared queue; T1..N free
/// whatever they receive.  Checks the remote-free path under real
/// contention (TSan is the co-assertion), and that recycling keeps slab
/// growth bounded — blocks must round-trip, not accumulate.
TEST(PoolAllocatorTest, CrossThreadFreeStressStaysBounded) {
  PoolAllocator& pool = PoolAllocator::instance();
  constexpr std::size_t kSize = 240;
  constexpr int kRounds = 20000;
  constexpr int kConsumers = 7;

  const std::size_t reservedBefore = pool.reservedBytes();

  MpmcQueue<void*> pipe(1024);
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const int seen = consumed.load(std::memory_order_relaxed);
        if (seen >= kRounds) break;
        void* p = nullptr;
        if (pipe.pop(p)) {
          pool.deallocate(p, kSize);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  for (int i = 0; i < kRounds; ++i) {
    void* p = pool.allocate(kSize);
    std::memset(p, 0x5A, kSize);
    while (!pipe.push(p)) std::this_thread::yield();
  }
  for (std::thread& t : consumers) t.join();
  // Drain stragglers the consumers' exit check left behind.
  void* p = nullptr;
  while (pipe.pop(p)) pool.deallocate(p, kSize);

  // 20k blocks round-tripped through at most (queue + magazines) live
  // at once; slab growth must reflect that window, not the total.
  const std::size_t grown = pool.reservedBytes() - reservedBefore;
  EXPECT_LT(grown, 4u * 1024 * 1024)
      << "cross-thread frees are not being recycled";
}

}  // namespace
}  // namespace ats
