// ISSUE-9: the lock-free ObjectTable + TLS entry cache behind both
// dependency systems.  The laws under test:
//
//   * exactly-one-Entry pin: every thread racing lookupOrCreate on the
//     same address gets the SAME Entry pointer (a lost CAS adopts the
//     winner), and distinct addresses get distinct entries;
//   * pointer stability: entries never move, not across growth past the
//     first segment and not across epoch invalidation;
//   * TLS cache soundness: a hit returns the same pointer a probe
//     would, and invalidateThreadCaches() forces the next lookup per
//     thread back through the shared probe (no stale hit after reset).
#include "deps/object_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "memory/stable_pool.hpp"

namespace ats {
namespace {

struct Payload {
  std::uint64_t value = 0;
};

void* key(std::uintptr_t index) {
  // Table keys are addresses; synthesize well-spread, never-dereferenced
  // ones (aligned like heap pointers so the low-bit shift in the mixer
  // sees realistic input).
  return reinterpret_cast<void*>((index + 1) << 6);
}

TEST(ObjectTableTest, LookupIsIdempotentAndDistinctPerAddress) {
  ObjectTable<Payload> table;
  Payload& a = table.lookupOrCreate(key(1));
  Payload& b = table.lookupOrCreate(key(2));
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&table.lookupOrCreate(key(1)), &a);
  EXPECT_EQ(&table.lookupOrCreate(key(2)), &b);
  EXPECT_EQ(table.entryCount(), 2u);
}

TEST(ObjectTableTest, SameAddressInsertRaceYieldsExactlyOneEntry) {
  // N threads race the first touch of the same addresses: the CAS-claim
  // protocol must publish exactly one Entry per address and every loser
  // must adopt it.  Threads only COLLECT pointers (entry mutation is
  // the deps layer's serialization contract, not the table's).
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAddrs = 512;
  ObjectTable<Payload> table;

  std::vector<std::vector<Payload*>> got(kThreads);
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(kAddrs);
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (std::size_t i = 0; i < kAddrs; ++i) {
        got[t].push_back(&table.lookupOrCreate(key(i)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kAddrs; ++i) {
      ASSERT_EQ(got[t][i], got[0][i])
          << "thread " << t << " pinned a different entry for address " << i;
    }
  }
  std::set<Payload*> distinct(got[0].begin(), got[0].end());
  EXPECT_EQ(distinct.size(), kAddrs);
  EXPECT_EQ(table.entryCount(), kAddrs);
}

TEST(ObjectTableTest, DistinctAddressInsertRaceKeepsEveryEntryApart) {
  // Disjoint per-thread address sets racing into the same segments:
  // no thread's insert may clobber or alias another's.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 400;
  ObjectTable<Payload> table;

  std::vector<std::vector<Payload*>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        got[t].push_back(
            &table.lookupOrCreate(key(t * kPerThread + i)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<Payload*> distinct;
  for (const auto& mine : got) distinct.insert(mine.begin(), mine.end());
  EXPECT_EQ(distinct.size(), kThreads * kPerThread);
  EXPECT_EQ(table.entryCount(), kThreads * kPerThread);

  // Every pointer still resolves to itself after the dust settles.
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(&table.lookupOrCreate(key(t * kPerThread + i)), got[t][i]);
    }
  }
}

TEST(ObjectTableTest, GrowthPastFirstSegmentKeepsPointersStable) {
  // Push well past the first segment's capacity (1024 slots, 16-probe
  // windows overflow earlier than that) and require (a) extra segments
  // actually appeared, (b) every previously returned pointer survives
  // re-lookup — growth appends, never rehashes.
  constexpr std::size_t kAddrs = 4000;
  ObjectTable<Payload> table;
  EXPECT_EQ(table.segmentCount(), 1u);

  std::vector<Payload*> first;
  first.reserve(kAddrs);
  for (std::size_t i = 0; i < kAddrs; ++i) {
    first.push_back(&table.lookupOrCreate(key(i)));
    first.back()->value = i;
  }
  EXPECT_GE(table.segmentCount(), 2u);
  EXPECT_EQ(table.entryCount(), kAddrs);

  for (std::size_t i = 0; i < kAddrs; ++i) {
    Payload& again = table.lookupOrCreate(key(i));
    ASSERT_EQ(&again, first[i]) << "entry " << i << " moved during growth";
    ASSERT_EQ(again.value, i);
  }
}

TEST(ObjectTableTest, InvalidateForcesReprobeButKeepsEntries) {
  // The stale-hit regression test: after invalidateThreadCaches() (what
  // the deps systems' reset() calls), the calling thread's next lookup
  // must MISS the TLS cache — a stale hit would hand back an entry
  // whose fields reset() is about to clear out from under the caller —
  // yet still land on the very same (stable) Entry via the probe.
  ObjectTable<Payload> table;
  Payload& entry = table.lookupOrCreate(key(7));

  // Warm the TLS slot, then prove it hits.
  const auto warm = objectTableThreadCacheCounters();
  ASSERT_EQ(&table.lookupOrCreate(key(7)), &entry);
  const auto hit = objectTableThreadCacheCounters();
  EXPECT_EQ(hit.hits, warm.hits + 1);
  EXPECT_EQ(hit.misses, warm.misses);

  table.invalidateThreadCaches();
  ASSERT_EQ(&table.lookupOrCreate(key(7)), &entry);
  const auto afterInvalidate = objectTableThreadCacheCounters();
  EXPECT_EQ(afterInvalidate.misses, hit.misses + 1)
      << "lookup after invalidation must reprobe, not trust the stale slot";

  // The re-probe restamped the slot with the new epoch: steady state
  // hits again.
  ASSERT_EQ(&table.lookupOrCreate(key(7)), &entry);
  const auto rewarmed = objectTableThreadCacheCounters();
  EXPECT_EQ(rewarmed.hits, afterInvalidate.hits + 1);
}

TEST(ObjectTableTest, TwoTablesNeverAliasInTheSharedThreadCache) {
  // The TLS cache is shared by every table in the process; the epoch
  // stamp is what keeps one table's entries from answering another's
  // lookups for the same address.
  ObjectTable<Payload> one;
  ObjectTable<Payload> two;
  Payload& inOne = one.lookupOrCreate(key(3));
  Payload& inTwo = two.lookupOrCreate(key(3));
  EXPECT_NE(&inOne, &inTwo);
  // Alternate lookups: each table keeps resolving to its own entry.
  EXPECT_EQ(&one.lookupOrCreate(key(3)), &inOne);
  EXPECT_EQ(&two.lookupOrCreate(key(3)), &inTwo);
  EXPECT_EQ(&one.lookupOrCreate(key(3)), &inOne);
}

TEST(ObjectTableTest, ForEachVisitsEveryEntryOnce) {
  ObjectTable<Payload> table;
  constexpr std::size_t kAddrs = 300;
  for (std::size_t i = 0; i < kAddrs; ++i) {
    table.lookupOrCreate(key(i)).value = 1;
  }
  std::size_t visited = 0;
  table.forEach([&](Payload& p) {
    visited += p.value;  // 1 per entry; a double-visit would overshoot
  });
  EXPECT_EQ(visited, kAddrs);
}

TEST(StablePoolTest, StridesRespectAlignmentAndRecycleReuses) {
  StablePool pool(/*blockBytes=*/24, /*blockAlign=*/64,
                  /*blocksPerChunk=*/4);
  EXPECT_EQ(pool.blockStride(), 64u);

  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_NE(a, b);

  // A recycled (never-published) block comes back before fresh carving.
  pool.recycle(b);
  EXPECT_EQ(pool.allocate(), b);

  // Exhausting a chunk grows a new one; addresses never repeat.
  std::set<void*> seen{a, b};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(seen.insert(pool.allocate()).second);
  }
  EXPECT_GE(pool.chunkCount(), 3u);
}

}  // namespace
}  // namespace ats
