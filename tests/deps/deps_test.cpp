#include "deps/dependency_system.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ats {
namespace {

/// Records every ready callback so tests can assert both order and the
/// exactly-once contract.
struct SinkRecorder {
  std::vector<DepTask*> order;
  std::map<DepTask*, int> counts;

  static void onReady(void* ctx, DepTask* task, std::size_t /*cpu*/) {
    auto* self = static_cast<SinkRecorder*>(ctx);
    self->order.push_back(task);
    self->counts[task] += 1;
  }

  ReadySink sink() { return ReadySink{&SinkRecorder::onReady, this}; }

  bool ready(DepTask* task) const { return counts.count(task) != 0; }
};

/// Single-threaded driver: registrations and releases issued in program
/// order, so every test assertion is about the protocol's bookkeeping,
/// not about races (the runtime tests cover those under TSan).
class EveryDepsSystemTest : public ::testing::TestWithParam<DepsKind> {
 protected:
  void SetUp() override {
    deps_ = makeDependencySystem(GetParam(), rec_.sink());
    ASSERT_NE(deps_, nullptr);
  }

  void reg(DepTask& task, std::initializer_list<Access> accesses) {
    deps_->registerTask(&task, accesses.begin(), accesses.size(), 0);
  }

  SinkRecorder rec_;
  std::unique_ptr<DependencySystem> deps_;
};

INSTANTIATE_TEST_SUITE_P(Kinds, EveryDepsSystemTest,
                         ::testing::Values(DepsKind::WaitFreeAsm,
                                           DepsKind::FineGrainedLocks),
                         [](const auto& info) {
                           return info.param == DepsKind::WaitFreeAsm
                                      ? std::string("WaitFreeAsm")
                                      : std::string("FineGrainedLocks");
                         });

TEST_P(EveryDepsSystemTest, NoAccessesReadyImmediately) {
  DepTask task;
  reg(task, {});
  EXPECT_EQ(rec_.order, std::vector<DepTask*>{&task});
  deps_->release(&task, 0);
  EXPECT_EQ(rec_.counts[&task], 1);
}

TEST_P(EveryDepsSystemTest, WriteChainReadiesInOrderExactlyOnce) {
  long long x = 0;
  DepTask t0, t1, t2;
  reg(t0, {inout(x)});
  reg(t1, {inout(x)});
  reg(t2, {inout(x)});
  ASSERT_EQ(rec_.order, std::vector<DepTask*>{&t0});

  deps_->release(&t0, 0);
  ASSERT_EQ(rec_.order, (std::vector<DepTask*>{&t0, &t1}));
  deps_->release(&t1, 0);
  ASSERT_EQ(rec_.order, (std::vector<DepTask*>{&t0, &t1, &t2}));
  deps_->release(&t2, 0);

  for (DepTask* t : {&t0, &t1, &t2}) EXPECT_EQ(rec_.counts[t], 1);
}

TEST_P(EveryDepsSystemTest, WriteAfterWriteWithNoInterveningReads) {
  // Exercises the write's chain edge alone: the predecessor's read group
  // is empty, so only the predecessor's completion may ready t1.
  long long x = 0;
  DepTask t0, t1;
  reg(t0, {out(x)});
  reg(t1, {out(x)});
  EXPECT_FALSE(rec_.ready(&t1));
  deps_->release(&t0, 0);
  EXPECT_TRUE(rec_.ready(&t1));
  EXPECT_EQ(rec_.counts[&t1], 1);
}

TEST_P(EveryDepsSystemTest, ReadersRunTogetherWriterWaitsForAll) {
  long long x = 0;
  DepTask writer1, r0, r1, r2, writer2;
  reg(writer1, {inout(x)});
  reg(r0, {in(x)});
  reg(r1, {in(x)});
  reg(r2, {in(x)});
  reg(writer2, {inout(x)});
  // Only the first writer may run.
  EXPECT_EQ(rec_.order, std::vector<DepTask*>{&writer1});

  // Its completion releases the whole read group at once...
  deps_->release(&writer1, 0);
  EXPECT_EQ(rec_.order,
            (std::vector<DepTask*>{&writer1, &r0, &r1, &r2}));

  // ...and the second writer needs every reader, not just the last.
  deps_->release(&r0, 0);
  deps_->release(&r2, 0);
  EXPECT_FALSE(rec_.ready(&writer2));
  deps_->release(&r1, 0);
  EXPECT_TRUE(rec_.ready(&writer2));
  deps_->release(&writer2, 0);

  for (DepTask* t : {&writer1, &r0, &r1, &r2, &writer2})
    EXPECT_EQ(rec_.counts[t], 1);
}

TEST_P(EveryDepsSystemTest, ReadsBeforeAnyWriteReadyImmediately) {
  long long x = 0;
  DepTask r0, r1, writer;
  reg(r0, {in(x)});
  reg(r1, {in(x)});
  EXPECT_EQ(rec_.order, (std::vector<DepTask*>{&r0, &r1}));
  reg(writer, {out(x)});
  EXPECT_FALSE(rec_.ready(&writer));
  deps_->release(&r0, 0);
  deps_->release(&r1, 0);
  EXPECT_TRUE(rec_.ready(&writer));
  deps_->release(&writer, 0);
}

TEST_P(EveryDepsSystemTest, IndependentObjectsDoNotInterfere) {
  long long x = 0, y = 0;
  DepTask tx, ty;
  reg(tx, {out(x)});
  reg(ty, {out(y)});
  EXPECT_EQ(rec_.order, (std::vector<DepTask*>{&tx, &ty}));
  deps_->release(&ty, 0);
  deps_->release(&tx, 0);
}

TEST_P(EveryDepsSystemTest, MultiAccessTaskWaitsForEveryObject) {
  long long x = 0, y = 0;
  DepTask writerX, writerY, joiner;
  reg(writerX, {out(x)});
  reg(writerY, {out(y)});
  reg(joiner, {in(x), inout(y)});
  EXPECT_FALSE(rec_.ready(&joiner));
  deps_->release(&writerX, 0);
  EXPECT_FALSE(rec_.ready(&joiner));
  deps_->release(&writerY, 0);
  EXPECT_TRUE(rec_.ready(&joiner));
  deps_->release(&joiner, 0);
  EXPECT_EQ(rec_.counts[&joiner], 1);
}

TEST_P(EveryDepsSystemTest, ResetAllowsDescriptorReuse) {
  long long x = 0;
  DepTask t0, t1;
  reg(t0, {inout(x)});
  deps_->release(&t0, 0);
  deps_->reset();

  // Same descriptors, same object, fresh chains: t0 must be ready at
  // registration again instead of chaining behind its stale former self.
  reg(t0, {inout(x)});
  EXPECT_EQ(rec_.counts[&t0], 2);
  reg(t1, {inout(x)});
  EXPECT_FALSE(rec_.ready(&t1));
  deps_->release(&t0, 0);
  EXPECT_TRUE(rec_.ready(&t1));
  deps_->release(&t1, 0);
}

TEST_P(EveryDepsSystemTest, ReportsItsName) {
  EXPECT_STREQ(deps_->name(), GetParam() == DepsKind::WaitFreeAsm
                                  ? "waitfree_asm"
                                  : "fine_grained_locks");
}

}  // namespace
}  // namespace ats
