#include "locks/locks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace ats {
namespace {

constexpr int kThreads = 8;
constexpr std::uint64_t kIncrementsPerThread = 20000;

/// The §3.2 correctness bar: 8 threads hammering a plain (non-atomic)
/// counter under the lock.  Any lost update or missing fence shows up as
/// a wrong total; TSan additionally checks the happens-before edges.
template <typename LockT>
void contendedIncrement(LockT& lock) {
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) *
                         kIncrementsPerThread);
}

TEST(Locks, SpinLockContendedIncrement) {
  SpinLock lock;
  contendedIncrement(lock);
}

TEST(Locks, TicketLockContendedIncrement) {
  TicketLock lock;
  contendedIncrement(lock);
}

TEST(Locks, McsLockContendedIncrement) {
  McsLock lock;
  contendedIncrement(lock);
}

TEST(Locks, TWALockContendedIncrement) {
  TWALock lock;
  contendedIncrement(lock);
}

TEST(Locks, PTLockContendedIncrement) {
  PTLock lock(64);
  contendedIncrement(lock);
}

TEST(Locks, PTLockTinyWaitingArrayStillCorrect) {
  PTLock lock(8);  // exactly the contender count: every slot recycles
  contendedIncrement(lock);
}

TEST(Locks, DTLockPlainLockContendedIncrement) {
  DTLock lock(64);
  contendedIncrement(lock);
}

TEST(Locks, SpinLockTryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.tryLock());
  EXPECT_FALSE(lock.tryLock());
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
}

TEST(Locks, PTLockTryLock) {
  PTLock lock(8);
  EXPECT_TRUE(lock.tryLock());
  EXPECT_FALSE(lock.tryLock());  // held
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
  lock.lock();  // FIFO and try paths interoperate
  EXPECT_FALSE(lock.tryLock());
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
}

TEST(Locks, PTLockMixedLockAndTryLockContendedIncrement) {
  PTLock lock(16);
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        if (t % 2 == 0) {
          lock.lock();  // FIFO path
        } else {
          SpinWait w;
          while (!lock.tryLock()) w.spin();  // polling path
        }
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) *
                         kIncrementsPerThread);
}

TEST(Locks, DTLockSingleThreadServeProtocol) {
  DTLock lock(8);
  lock.lock();
  std::uint64_t cpu = 99;
  EXPECT_FALSE(lock.popWaiter(cpu));  // nobody queued
  lock.unlock();

  // Re-acquire through the delegating entry point with no holder: the
  // caller must get the lock, not a delegation.
  std::uintptr_t item = 0;
  EXPECT_TRUE(lock.lockOrDelegate(3, item));
  EXPECT_FALSE(lock.popWaiter(cpu));
  lock.unlock();
}

/// Deterministic batched-serve protocol walk: a holder pins the lock,
/// known delegators queue behind it, and the holder answers them with
/// popWaiters snapshots smaller than the queue — exercising batch
/// boundaries (a burst split across two serveBatch calls) without any
/// scheduling luck involved.
TEST(Locks, DTLockPopWaitersSnapshotsAndServesInTicketOrder) {
  constexpr std::uint64_t kWaiters = 4;
  DTLock lock(16);
  lock.lock();

  std::uint64_t cpus[kWaiters] = {};
  EXPECT_EQ(lock.popWaiters(cpus, kWaiters), 0u);  // nobody queued

  std::atomic<std::uint64_t> results[kWaiters];
  for (auto& r : results) r.store(0, std::memory_order_relaxed);
  std::vector<std::thread> waiters;
  for (std::uint64_t t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&, t] {
      std::uintptr_t item = 0;
      // The lock is held for the whole queuing phase, so every waiter
      // must be served (never acquire).
      ASSERT_FALSE(lock.lockOrDelegate(t, item));
      results[t].store(item, std::memory_order_relaxed);
    });
  }

  // popWaiters does not consume: poll until the snapshot covers all
  // four queued requests, then check re-reading returns the same run.
  SpinWait w;
  while (lock.popWaiters(cpus, kWaiters) < kWaiters) w.spin();
  std::uint64_t again[kWaiters] = {};
  ASSERT_EQ(lock.popWaiters(again, kWaiters), kWaiters);
  for (std::uint64_t i = 0; i < kWaiters; ++i) EXPECT_EQ(again[i], cpus[i]);

  // Serve in two batches of two: the split must not lose, reorder, or
  // double-serve anyone.
  std::uint64_t batch[2] = {};
  std::uintptr_t items[2] = {};
  for (int half = 0; half < 2; ++half) {
    ASSERT_EQ(lock.popWaiters(batch, 2), 2u);
    for (int i = 0; i < 2; ++i) items[i] = 100 + batch[i];
    lock.serveBatch(batch, items, 2);
  }
  EXPECT_EQ(lock.popWaiters(cpus, kWaiters), 0u);  // everyone answered
  lock.unlock();
  for (auto& t : waiters) t.join();

  for (std::uint64_t t = 0; t < kWaiters; ++t) {
    EXPECT_EQ(results[t].load(std::memory_order_relaxed), 100 + t)
        << "waiter " << t << " got someone else's result";
  }
}

/// Batched analogue of DTLockDelegationDeliversExactlyOnce, under the
/// §3.2 8-thread stress shape: the holder mints numbers for itself and
/// answers queued waiters through popWaiters/serveBatch with a snapshot
/// cap of 3 — far below the contender count, so batch boundaries land
/// mid-queue constantly and served waiters requeue while the holder is
/// still serving.  Exactly-once delivery = the multiset is 1..N.
TEST(Locks, DTLockBatchedServeDeliversExactlyOnce) {
  constexpr int kOps = 2000;
  constexpr std::size_t kBatchCap = 3;
  DTLock lock(64);
  std::uint64_t counter = 0;  // guarded by lock
  std::vector<std::vector<std::uintptr_t>> got(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      std::uint64_t cpus[kBatchCap];
      std::uintptr_t items[kBatchCap];
      while (mine.size() < static_cast<std::size_t>(kOps)) {
        std::uintptr_t item = 0;
        if (lock.lockOrDelegate(static_cast<std::uint64_t>(t), item)) {
          mine.push_back(++counter);  // holder serves itself...
          std::size_t n;
          while ((n = lock.popWaiters(cpus, kBatchCap)) != 0) {
            for (std::size_t i = 0; i < n; ++i) {
              items[i] = static_cast<std::uintptr_t>(++counter);
            }
            lock.serveBatch(cpus, items, n);  // ...and batches of waiters
          }
          lock.unlock();
        } else {
          mine.push_back(item);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uintptr_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kOps);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "batched delegation lost or duplicated";
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOps);
}

/// Serve-one and batched serving interleave on the same lock: both
/// advance `served_` identically, so a holder may mix them freely.
TEST(Locks, DTLockMixedServeOneAndBatchDeliversExactlyOnce) {
  constexpr int kOps = 1500;
  DTLock lock(64);
  std::uint64_t counter = 0;
  std::vector<std::vector<std::uintptr_t>> got(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      std::uint64_t cpus[2];
      std::uintptr_t items[2];
      bool batchTurn = (t % 2) == 0;
      while (mine.size() < static_cast<std::size_t>(kOps)) {
        std::uintptr_t item = 0;
        if (lock.lockOrDelegate(static_cast<std::uint64_t>(t), item)) {
          mine.push_back(++counter);
          for (;;) {
            if (batchTurn) {
              const std::size_t n = lock.popWaiters(cpus, 2);
              if (n == 0) break;
              for (std::size_t i = 0; i < n; ++i) {
                items[i] = static_cast<std::uintptr_t>(++counter);
              }
              lock.serveBatch(cpus, items, n);
            } else {
              std::uint64_t waiterCpu = 0;
              if (!lock.popWaiter(waiterCpu)) break;
              lock.serve(static_cast<std::uintptr_t>(++counter));
            }
            batchTurn = !batchTurn;  // alternate WITHIN one lock hold too
          }
          lock.unlock();
        } else {
          mine.push_back(item);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uintptr_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kOps);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "mixed-mode serving lost or duplicated";
  }
}

/// Mirrors the SyncScheduler usage: every thread asks for "the next
/// ticket number" via delegation.  Whoever holds the lock mints numbers
/// for itself and for every queued waiter.  Mutual exclusion and exactly-
/// once delivery show up as the delivered multiset being 1..N with no
/// gaps or duplicates.
TEST(Locks, DTLockDelegationDeliversExactlyOnce) {
  constexpr int kOps = 2000;
  DTLock lock(64);
  std::uint64_t counter = 0;  // guarded by lock
  std::vector<std::vector<std::uintptr_t>> got(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      while (mine.size() < static_cast<std::size_t>(kOps)) {
        std::uintptr_t item = 0;
        if (lock.lockOrDelegate(static_cast<std::uint64_t>(t), item)) {
          mine.push_back(++counter);  // holder serves itself...
          std::uint64_t waiterCpu = 0;
          while (lock.popWaiter(waiterCpu)) {  // ...and everyone queued
            lock.serve(static_cast<std::uintptr_t>(++counter));
          }
          lock.unlock();
        } else {
          mine.push_back(item);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uintptr_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kOps);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "delegation lost or duplicated a value";
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace ats
