#include "locks/locks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace ats {
namespace {

constexpr int kThreads = 8;
constexpr std::uint64_t kIncrementsPerThread = 20000;

/// The §3.2 correctness bar: 8 threads hammering a plain (non-atomic)
/// counter under the lock.  Any lost update or missing fence shows up as
/// a wrong total; TSan additionally checks the happens-before edges.
template <typename LockT>
void contendedIncrement(LockT& lock) {
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) *
                         kIncrementsPerThread);
}

TEST(Locks, SpinLockContendedIncrement) {
  SpinLock lock;
  contendedIncrement(lock);
}

TEST(Locks, TicketLockContendedIncrement) {
  TicketLock lock;
  contendedIncrement(lock);
}

TEST(Locks, McsLockContendedIncrement) {
  McsLock lock;
  contendedIncrement(lock);
}

TEST(Locks, TWALockContendedIncrement) {
  TWALock lock;
  contendedIncrement(lock);
}

TEST(Locks, PTLockContendedIncrement) {
  PTLock lock(64);
  contendedIncrement(lock);
}

TEST(Locks, PTLockTinyWaitingArrayStillCorrect) {
  PTLock lock(8);  // exactly the contender count: every slot recycles
  contendedIncrement(lock);
}

TEST(Locks, DTLockPlainLockContendedIncrement) {
  DTLock lock(64);
  contendedIncrement(lock);
}

TEST(Locks, SpinLockTryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.tryLock());
  EXPECT_FALSE(lock.tryLock());
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
}

TEST(Locks, PTLockTryLock) {
  PTLock lock(8);
  EXPECT_TRUE(lock.tryLock());
  EXPECT_FALSE(lock.tryLock());  // held
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
  lock.lock();  // FIFO and try paths interoperate
  EXPECT_FALSE(lock.tryLock());
  lock.unlock();
  EXPECT_TRUE(lock.tryLock());
  lock.unlock();
}

TEST(Locks, PTLockMixedLockAndTryLockContendedIncrement) {
  PTLock lock(16);
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        if (t % 2 == 0) {
          lock.lock();  // FIFO path
        } else {
          SpinWait w;
          while (!lock.tryLock()) w.spin();  // polling path
        }
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) *
                         kIncrementsPerThread);
}

TEST(Locks, DTLockSingleThreadServeProtocol) {
  DTLock lock(8);
  lock.lock();
  std::uint64_t cpu = 99;
  EXPECT_FALSE(lock.popWaiter(cpu));  // nobody queued
  lock.unlock();

  // Re-acquire through the delegating entry point with no holder: the
  // caller must get the lock, not a delegation.
  std::uintptr_t item = 0;
  EXPECT_TRUE(lock.lockOrDelegate(3, item));
  EXPECT_FALSE(lock.popWaiter(cpu));
  lock.unlock();
}

/// Mirrors the SyncScheduler usage: every thread asks for "the next
/// ticket number" via delegation.  Whoever holds the lock mints numbers
/// for itself and for every queued waiter.  Mutual exclusion and exactly-
/// once delivery show up as the delivered multiset being 1..N with no
/// gaps or duplicates.
TEST(Locks, DTLockDelegationDeliversExactlyOnce) {
  constexpr int kOps = 2000;
  DTLock lock(64);
  std::uint64_t counter = 0;  // guarded by lock
  std::vector<std::vector<std::uintptr_t>> got(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      while (mine.size() < static_cast<std::size_t>(kOps)) {
        std::uintptr_t item = 0;
        if (lock.lockOrDelegate(static_cast<std::uint64_t>(t), item)) {
          mine.push_back(++counter);  // holder serves itself...
          std::uint64_t waiterCpu = 0;
          while (lock.popWaiter(waiterCpu)) {  // ...and everyone queued
            lock.serve(static_cast<std::uintptr_t>(++counter));
          }
          lock.unlock();
        } else {
          mine.push_back(item);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uintptr_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kOps);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "delegation lost or duplicated a value";
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace ats
