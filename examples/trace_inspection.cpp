// Offline reader for the CTF-lite `.ats` traces fig10/fig11 (and any
// Tracer user) write with TraceWriter::writeBinary: validates the file,
// prints the event listing, the analyzer summary, and the ASCII
// timeline — the inspection loop promised by fig10_trace_locks.cpp.
//
//   trace_inspection <trace.ats> [numThreads]
//   trace_inspection --selftest
//
// `numThreads` defaults to one past the highest stream id that carries
// worker events (streams above that are the spawner/kernel aux streams).
// `--selftest` runs the full pipeline against itself: emit a known
// sequence through a live Tracer (kernel stream included), write the
// binary form into ATS_TRACE_DIR, read it back, and verify the
// round-trip is bit-exact — the ctest entry examples/CMakeLists.txt
// registers.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "instr/noise_injector.hpp"
#include "instr/trace_analyzer.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"

using namespace ats;

namespace {

/// Worker streams are the ones that log idle streaks — the spawner
/// helps tasks but never idles, and the kernel stream only carries
/// irqs, so neither may widen (and thereby dilute) the starvation
/// stats.  Traces with no idle events at all (every worker saturated
/// end to end) fall back to counting every non-kernel stream, which
/// can include the spawner — pass numThreads explicitly in that case.
std::size_t inferNumThreads(const std::vector<TraceRecord>& records) {
  std::size_t threads = 0;
  for (const TraceRecord& r : records) {
    if (r.event == TraceEvent::WorkerIdleBegin ||
        r.event == TraceEvent::WorkerIdleEnd) {
      threads = std::max(threads, static_cast<std::size_t>(r.stream) + 1);
    }
  }
  if (threads != 0) return threads;
  for (const TraceRecord& r : records) {
    if (r.event == TraceEvent::KernelIrqEnter ||
        r.event == TraceEvent::KernelIrqExit) {
      continue;
    }
    threads = std::max(threads, static_cast<std::size_t>(r.stream) + 1);
  }
  return std::max<std::size_t>(threads, 1);
}

int inspect(const std::string& path, std::size_t numThreadsArg) {
  std::vector<TraceRecord> records;
  if (!TraceWriter::readBinary(path, records)) {
    std::fprintf(stderr,
                 "error: %s is not a readable version-%u ats trace\n",
                 path.c_str(), TraceWriter::kVersion);
    return 1;
  }
  const std::size_t numThreads =
      numThreadsArg != 0 ? numThreadsArg : inferNumThreads(records);
  std::printf("# %s: %zu records, %zu threads\n\n", path.c_str(),
              records.size(), numThreads);
  std::printf("%s\n", TraceWriter::renderText(records).c_str());
  std::printf("%s\n", formatAnalysis(analyzeTrace(records, numThreads))
                          .c_str());
  std::printf("%s", renderTimeline(records, numThreads).c_str());
  return 0;
}

int selftest() {
  const std::string path =
      envString("ATS_TRACE_DIR", ".") + "/trace_inspection_selftest.ats";

  // A miniature fig11-shaped trace: two workers, scheduler traffic, and
  // one kernel burst.  Emitted through a real Tracer so the round trip
  // covers the TSC rescale, not just the file format.
  Tracer tracer(2, 64);
  tracer.emit(0, TraceEvent::WorkerIdleBegin);
  tracer.emit(1, TraceEvent::SchedDrain, 3);
  tracer.emit(0, TraceEvent::WorkerIdleEnd);
  tracer.emit(0, TraceEvent::TaskStart, 0x1000);
  tracer.emit(tracer.kernelStream(), TraceEvent::KernelIrqEnter, 0);
  // v3 payload: one own-domain + one cross-domain hand-off packed into
  // a single SchedServe (trace_event.hpp's packServePayload).
  tracer.emit(1, TraceEvent::SchedServe, packServePayload(1, 1));
  tracer.emit(tracer.kernelStream(), TraceEvent::KernelIrqExit, 0);
  tracer.emit(0, TraceEvent::TaskEnd, 0x1000);
  tracer.emit(1, TraceEvent::SchedSteal, 0);  // payload: victim slot
  tracer.emit(tracer.spawnerStream(), TraceEvent::TaskStart, 0x2000);
  tracer.emit(tracer.spawnerStream(), TraceEvent::TaskEnd, 0x2000);

  const std::vector<TraceRecord> written = tracer.collect();
  if (written.size() != 11 || tracer.dropped() != 0) {
    std::fprintf(stderr, "selftest: expected 11 records 0 drops, got "
                         "%zu/%llu\n",
                 written.size(),
                 static_cast<unsigned long long>(tracer.dropped()));
    return 1;
  }
  if (!TraceWriter::writeBinary(path, written)) {
    std::fprintf(stderr, "selftest: cannot write %s\n", path.c_str());
    return 1;
  }
  std::vector<TraceRecord> reread;
  if (!TraceWriter::readBinary(path, reread)) {
    std::fprintf(stderr, "selftest: cannot re-read %s\n", path.c_str());
    return 1;
  }
  if (reread.size() != written.size() ||
      std::memcmp(reread.data(), written.data(),
                  written.size() * sizeof(TraceRecord)) != 0) {
    std::fprintf(stderr, "selftest: round trip is not bit-exact\n");
    return 1;
  }

  // The analyzer must unpack the v3 serve payload from the re-read
  // records: 1 local + 1 remote hand-off, a 50% cross-domain fraction.
  const TraceAnalysis analysis = analyzeTrace(reread, 2);
  if (analysis.servedTasksLocal != 1 || analysis.servedTasksRemote != 1 ||
      analysis.servedTasks != 2) {
    std::fprintf(stderr,
                 "selftest: serve payload unpack mismatch "
                 "(local=%llu remote=%llu)\n",
                 static_cast<unsigned long long>(analysis.servedTasksLocal),
                 static_cast<unsigned long long>(analysis.servedTasksRemote));
    return 1;
  }

  const int rc = inspect(path, 2);
  if (rc != 0) return rc;
  std::remove(path.c_str());
  std::printf("\nSELFTEST OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0)
    return selftest();
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s <trace.ats> [numThreads]\n       %s --selftest\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::size_t numThreads =
      argc == 3 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
                : 0;
  return inspect(argv[1], numThreads);
}
