// Figure 11 reproduction: the effect of operating-system noise on the
// delegation scheduler, observed through correlated kernel + runtime
// events on one timeline.
//
// The paper's trace shows a hardware interrupt stalling the thread that
// owns the scheduler lock: all other cores starve until it resumes, after
// which the accumulated surplus of ready tasks produces a long serve-free
// period.  We reproduce the scenario with the KernelNoiseInjector (a
// thread that burns the CPU in bursts and logs KernelIrqEnter/Exit into
// the tracer's kernel stream — see DESIGN.md for why this preserves the
// measurement) and report the analyzer's irq/serve-gap correlation.
#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "common/env.hpp"
#include "instr/noise_injector.hpp"
#include "instr/trace_analyzer.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ats;

int main() {
  const std::size_t threads = envSize("ATS_THREADS", 4);
  const std::string traceDir = envString("ATS_TRACE_DIR", ".");
  std::printf("# fig11: OS-noise effect on the scheduler "
              "(%zu threads, synthetic irq bursts)\n\n", threads);

  Tracer tracer(threads, 1u << 18);
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, threads));
  cfg.tracer = &tracer;

  auto app = makeApp("dotprod", envFlag("ATS_FULL") ? AppScale::Full
                                                    : AppScale::Quick);
  const auto sizes = app->defaultBlockSizes();
  {
    Runtime rt(cfg);
    // Noise: 2ms bursts every 10ms, attributed to CPU 0 — long enough to
    // displace whichever thread holds the DTLock on a loaded host.
    KernelNoiseInjector noise(tracer, /*periodUs=*/10000, /*burstUs=*/2000,
                              /*targetCpu=*/0);
    // Default rep count sized so the traced window spans many noise
    // periods even at quick scale (ATS_REPS raises it further).
    const std::size_t reps = envSize("ATS_REPS", 100);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const AppResult r = app->run(rt, sizes.back());
      if (!r.verified) {
        std::fprintf(stderr, "FATAL: dotprod failed verification\n");
        return 1;
      }
    }
    noise.stop();
    std::printf("injected %llu irq bursts\n\n",
                static_cast<unsigned long long>(noise.burstsInjected()));
  }

  const auto records = tracer.collect();
  const TraceAnalysis a = analyzeTrace(records, threads);
  TraceWriter::writeBinary(traceDir + "/fig11_noise.ats", records);
  TraceWriter::writeText(traceDir + "/fig11_noise.txt", records);

  std::printf("%s", formatAnalysis(a).c_str());
  std::printf("%s", renderTimeline(records, threads).c_str());
  std::printf("\n# paper claim: serve gaps spike while the serving thread "
              "is displaced by kernel activity\n");
  std::printf("max_serve_gap=%.1fus  max_serve_gap_during_irq=%.1fus  "
              "irq_time=%.1fus\n",
              a.maxServeGapUs, a.maxServeGapDuringIrqUs, a.irqTotalUs);
  return 0;
}
