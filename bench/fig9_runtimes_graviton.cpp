// Figure 9 reproduction: runtime comparison on the ARM Graviton2 preset
// (paper compares Nanos6, GCC and LLVM there).  Benchmarks: Heat, HPCCG,
// miniAMR, Matmul.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig9", ats::MachinePreset::Graviton,
                        {"heat", "hpccg", "miniamr", "matmul"},
                        ats::bench::runtimeComparisonVariants());
  return 0;
}
