#include "bench/fig_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "runtime/runtime.hpp"

namespace ats::bench {

const std::vector<Variant>& ablationVariants() {
  static const std::vector<Variant> v = {
      {"optimized", &optimizedConfig},
      {"wo_jemalloc", &withoutJemallocConfig},
      {"wo_waitfree_deps", &withoutWaitFreeDepsConfig},
      {"wo_dtlock", &withoutDTLockConfig},
  };
  return v;
}

const std::vector<Variant>& runtimeComparisonVariants() {
  static const std::vector<Variant> v = {
      {"nanos6", &optimizedConfig},
      {"gcc_like", &centralMutexRuntimeConfig},
      {"llvm_like", &workStealingRuntimeConfig},
  };
  return v;
}

SweepConfig resolveSweepConfig(MachinePreset preset) {
  SweepConfig cfg;
  const bool full = envFlag("ATS_FULL");
  cfg.scale = full ? AppScale::Full : AppScale::Quick;
  const std::size_t defaultThreads =
      full ? makeTopology(preset).numCpus : 4;
  cfg.topo = makeTopology(preset, envSize("ATS_THREADS", defaultThreads));
  cfg.reps = envSize("ATS_REPS", full ? 5 : 2);
  cfg.maxPoints = full ? 64 : 5;
  return cfg;
}

namespace {

/// Subsample a coarse->fine size list to at most `maxPoints`, always
/// keeping both endpoints.
std::vector<std::size_t> selectSizes(std::vector<std::size_t> sizes,
                                     std::size_t maxPoints) {
  if (sizes.size() <= maxPoints) return sizes;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < maxPoints; ++i)
    out.push_back(sizes[i * (sizes.size() - 1) / (maxPoints - 1)]);
  return out;
}

}  // namespace

void runFigure(const std::string& figure, MachinePreset preset,
               const std::vector<std::string>& apps,
               const std::vector<Variant>& variants) {
  const SweepConfig cfg = resolveSweepConfig(preset);
  std::printf("# %s: %s preset, %zu threads, %zu NUMA domains, %zu reps, "
              "%s scale\n",
              figure.c_str(), presetName(preset), cfg.topo.numCpus,
              cfg.topo.numNumaDomains, cfg.reps,
              cfg.scale == AppScale::Full ? "full" : "quick");
  std::printf("# efficiency = 100 * throughput / peak-throughput-per-app "
              "(paper §6.2); higher is better\n\n");

  for (const std::string& appName : apps) {
    auto app = makeApp(appName, cfg.scale);
    const auto sizes = selectSizes(app->defaultBlockSizes(), cfg.maxPoints);

    // grid[v][s] = mean throughput of variant v at size s.
    std::vector<std::vector<double>> grid(variants.size());
    std::vector<double> grains(sizes.size(), 0.0);
    double peak = 0.0;

    for (std::size_t v = 0; v < variants.size(); ++v) {
      Runtime rt(variants[v].make(cfg.topo));
      for (std::size_t s = 0; s < sizes.size(); ++s) {
        RunningStats stats;
        for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
          const AppResult r = app->run(rt, sizes[s]);
          if (!r.verified) {
            std::fprintf(stderr,
                         "FATAL: %s failed verification (variant %s, "
                         "block %zu, checksum %.17g)\n",
                         appName.c_str(), variants[v].label.c_str(),
                         sizes[s], r.checksum);
            std::exit(1);
          }
          stats.add(r.throughput());
          grains[s] = r.grainWorkUnits();
        }
        grid[v].push_back(stats.mean());
        peak = std::max(peak, stats.mean());
      }
    }

    std::printf("# %s %s\n", figure.c_str(), appName.c_str());
    std::printf("%-18s", "grain_work_units");
    for (const Variant& v : variants) std::printf("  %-18s", v.label.c_str());
    std::printf("\n");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::printf("%-18.3g", grains[s]);
      for (std::size_t v = 0; v < variants.size(); ++v)
        std::printf("  %-18.1f", peak > 0 ? 100.0 * grid[v][s] / peak : 0.0);
      std::printf("\n");
    }
    std::printf("\n");
  }
}

}  // namespace ats::bench
