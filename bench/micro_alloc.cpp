// §4 claim: a thread-caching scalable allocator removes the memory-
// management bottleneck that surfaces once the scheduler and dependency
// contention are gone.  Task-descriptor-sized churn (alloc+free) per
// second, pool vs system, same-thread and cross-thread (producer/consumer)
// patterns, at 1..8 threads.
#include <benchmark/benchmark.h>

#include <thread>

#include "containers/spsc_queue.hpp"
#include "memory/pool_allocator.hpp"
#include "memory/system_allocator.hpp"

namespace {

using namespace ats;

// Typical task descriptor size: Task + a few accesses + a small lambda.
constexpr std::size_t kTaskSize = 256;

void churn(benchmark::State& state, Allocator& alloc) {
  for (auto _ : state) {
    void* p = alloc.allocate(kTaskSize);
    benchmark::DoNotOptimize(p);
    alloc.deallocate(p, kTaskSize);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Alloc_Pool(benchmark::State& state) {
  churn(state, PoolAllocator::instance());
}
void BM_Alloc_System(benchmark::State& state) {
  churn(state, SystemAllocator::instance());
}

// Batched lifetime: allocate a window of objects, then free them — the
// task-churn shape (tasks live until their successors release them).
void windowChurn(benchmark::State& state, Allocator& alloc) {
  constexpr std::size_t kWindow = 128;
  void* live[kWindow] = {};
  std::size_t head = 0;
  for (auto _ : state) {
    if (live[head] != nullptr) alloc.deallocate(live[head], kTaskSize);
    live[head] = alloc.allocate(kTaskSize);
    head = (head + 1) % kWindow;
  }
  for (void* p : live)
    if (p != nullptr) alloc.deallocate(p, kTaskSize);
  state.SetItemsProcessed(state.iterations());
}

void BM_AllocWindow_Pool(benchmark::State& state) {
  windowChurn(state, PoolAllocator::instance());
}
void BM_AllocWindow_System(benchmark::State& state) {
  windowChurn(state, SystemAllocator::instance());
}

// Cross-thread free: thread 0 allocates and ships; thread 1 frees — the
// pattern task disposal creates (a successor's releasing thread frees the
// predecessor's descriptor).
void crossFree(benchmark::State& state, Allocator& alloc) {
  static SpscQueue<void*> pipe(1024);
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      void* p = alloc.allocate(kTaskSize);
      while (!pipe.push(p)) std::this_thread::yield();
    }
  } else {
    for (auto _ : state) {
      void* p = nullptr;
      while (!pipe.pop(p)) std::this_thread::yield();
      alloc.deallocate(p, kTaskSize);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AllocCrossThread_Pool(benchmark::State& state) {
  crossFree(state, PoolAllocator::instance());
}
void BM_AllocCrossThread_System(benchmark::State& state) {
  crossFree(state, SystemAllocator::instance());
}

}  // namespace

BENCHMARK(BM_Alloc_Pool)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_Alloc_System)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_AllocWindow_Pool)->ThreadRange(1, 4)->UseRealTime();
BENCHMARK(BM_AllocWindow_System)->ThreadRange(1, 4)->UseRealTime();
BENCHMARK(BM_AllocCrossThread_Pool)->Threads(2)->UseRealTime();
BENCHMARK(BM_AllocCrossThread_System)->Threads(2)->UseRealTime();

BENCHMARK_MAIN();
