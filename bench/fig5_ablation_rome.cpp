// Figure 5 reproduction: the ablation sweep on the AMD Rome preset (the
// paper's largest machine: 128 threads, 8 NUMA domains).  Benchmarks:
// NBody, HPCCG, miniAMR, Matmul.  The paper highlights that the scheduler
// optimization (DTLock) matters most here because of the core count —
// with ATS_FULL=1 and a matching ATS_THREADS this preset exercises 8 SPSC
// add-buffers.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig5", ats::MachinePreset::Rome,
                        {"nbody", "hpccg", "miniamr", "matmul"},
                        ats::bench::ablationVariants());
  return 0;
}
