// Figure 4 reproduction: efficiency vs task granularity of the runtime
// with and without each optimization, on the Intel Xeon preset.
// Benchmarks shown in the paper's Fig. 4: Lulesh, Dot Product, miniAMR,
// Cholesky.  Expected shape: all variants converge at coarse granularity;
// at fine granularity the "optimized" curve stays highest, with the
// removed-optimization curves dropping off earlier (which one dominates is
// benchmark-dependent, §6.2).
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig4", ats::MachinePreset::Xeon,
                        {"lulesh", "dotprod", "miniamr", "cholesky"},
                        ats::bench::ablationVariants());
  return 0;
}
