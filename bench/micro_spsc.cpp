// §3.1 claim: the bounded wait-free SPSC queue is a cheap decoupling
// buffer.  Single-thread round-trip cost, batch drain via consumeAll, and
// a comparison against the MPMC queue and a mutex-guarded deque on the
// same 1-producer/1-consumer traffic.
#include <benchmark/benchmark.h>

#include <deque>
#include <mutex>
#include <thread>

#include "containers/mpmc_queue.hpp"
#include "containers/spsc_queue.hpp"

namespace {

using namespace ats;

void BM_SpscPushPop(benchmark::State& state) {
  SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.push(1);
    q.pop(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void BM_SpscConsumeAllBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  SpscQueue<std::uint64_t> q(2 * batch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) q.push(i);
    q.consumeAll([&](std::uint64_t v) { sink += v; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpscConsumeAllBatch)->Arg(8)->Arg(64)->Arg(512);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.push(1);
    q.pop(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcPushPop);

void BM_MutexDequePushPop(benchmark::State& state) {
  std::mutex mu;
  std::deque<std::uint64_t> q;
  std::uint64_t v = 0;
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> g(mu);
      q.push_back(1);
    }
    {
      std::lock_guard<std::mutex> g(mu);
      v = q.front();
      q.pop_front();
    }
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexDequePushPop);

// Cross-thread stream: producer in thread 0, consumer in thread 1.
void BM_SpscCrossThread(benchmark::State& state) {
  static SpscQueue<std::uint64_t> q(4096);  // shared by both roles
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      while (!q.push(1)) std::this_thread::yield();
    } else {
      std::uint64_t v;
      while (!q.pop(v)) std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscCrossThread)->Threads(2)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
