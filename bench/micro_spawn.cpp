// Prices the registration fast path (ISSUE 9): every spawn pays one
// ObjectTable::lookupOrCreate per declared access, and the apps layer
// (heat, hpccg, lulesh) re-registers the same block addresses every
// iteration — so the reused-address steady state is the case worth
// optimizing.  Two layers of measurement:
//
//   * BM_TableLookupReused: ObjectTable::lookupOrCreate alone, on a
//     per-thread ring of known addresses — the exact shared-state cost
//     a registration pays per access, with nothing else in the loop.
//     The seed table's per-lookup price here is a shard SpinLock plus
//     an unordered_map probe; the replacement's is a TLS cache hit.
//   * BM_Register*: deps-layer register+release round trips on
//     preallocated descriptors through a no-op ready sink — no
//     scheduler, no allocator, no task body.  The per-access table
//     lookup is the dominant shared-state cost, which is exactly the
//     knob under test.  Threads share ONE dependency system (that is
//     where the seed table's shard locks meet) but own disjoint
//     address sets, per the same-object serialization contract.
//   * BM_SpawnRoundTrip*: full runtime spawn -> ready -> run -> release
//     round trips (empty bodies) through optimizedConfig, the number
//     the efficiency knee in fig4-9 is made of.
//
// Address streams:
//   * Reused: a small per-thread ring (kReusedAddrs) cycled forever —
//     steady-state re-registration, the hpccg shape.  With the TLS
//     entry cache this touches no shared line after the first pass.
//   * Fresh: a ring far larger than the TLS cache (kFreshAddrs), so
//     after the first insert pass every lookup is a cache-defeating
//     full-table probe — the insert/probe path's price, not the hit
//     path's.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "deps/object_table.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ats;

constexpr int kBatch = 2000;
constexpr std::size_t kReusedAddrs = 64;
constexpr std::size_t kFreshAddrs = std::size_t{1} << 15;

// Synthetic, never-dereferenced object keys: disjoint per thread so the
// sibling-task serialization rule holds with zero cross-thread object
// overlap (the table itself is still fully shared).
void* addrFor(std::size_t thread, std::size_t index) {
  return reinterpret_cast<void*>(((thread + 1) << 44) | ((index + 1) << 6));
}

/// Stand-in for a per-object dependency record: one cache line, like
/// the deps systems' entries.  The bench never mutates it — the cost
/// under test is finding it.
struct alignas(64) LookupEntry {
  std::uintptr_t tag = 0;
};

ObjectTable<LookupEntry>* gLookupTable = nullptr;

/// The registration fast path in isolation: lookupOrCreate over a
/// per-thread reused ring, one shared table.  arg = ring size.
void BM_TableLookupReused(benchmark::State& state) {
  const auto ringSize = static_cast<std::size_t>(state.range(0));
  const auto tid = static_cast<std::size_t>(state.thread_index());
  if (tid == 0) gLookupTable = new ObjectTable<LookupEntry>;

  std::size_t cursor = 0;
  for (auto _ : state) {
    ObjectTable<LookupEntry>& table = *gLookupTable;
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(&table.lookupOrCreate(addrFor(tid, cursor)));
      cursor = cursor + 1 == ringSize ? 0 : cursor + 1;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);

  if (tid == 0) {
    delete gLookupTable;
    gLookupTable = nullptr;
  }
}

struct RegisterShared {
  std::unique_ptr<DependencySystem> deps;
  // Descriptor pairs live here (not on thread stacks) so thread 0 can
  // reset() at teardown while every thread's final chain target is
  // still valid storage.
  std::vector<std::unique_ptr<DepTask[]>> tasks;
};

RegisterShared* gReg = nullptr;

void noopReady(void* /*ctx*/, DepTask* /*task*/, std::size_t /*cpu*/) {}

/// Deps-layer round trip: register `accCount` writes, then release.
/// Ping-pongs two descriptors per thread so a re-registration always
/// chains behind the OTHER descriptor's (completed) node, never its own.
void registerRoundTrip(benchmark::State& state, bool reuse) {
  const auto accCount = static_cast<std::size_t>(state.range(0));
  const auto tid = static_cast<std::size_t>(state.thread_index());
  if (tid == 0) {
    gReg = new RegisterShared;
    gReg->deps = makeDependencySystem(DepsKind::WaitFreeAsm,
                                      ReadySink{&noopReady, nullptr});
    for (int t = 0; t < state.threads(); ++t)
      gReg->tasks.push_back(std::make_unique<DepTask[]>(2));
  }

  const std::size_t ringSize = reuse ? kReusedAddrs : kFreshAddrs;
  std::size_t cursor = 0;
  std::size_t flip = 0;
  for (auto _ : state) {
    DependencySystem& deps = *gReg->deps;
    DepTask* pair = gReg->tasks[tid].get();
    for (int i = 0; i < kBatch; ++i) {
      Access acc[kMaxAccessesPerTask];
      for (std::size_t j = 0; j < accCount; ++j) {
        acc[j] = Access{addrFor(tid, cursor), AccessMode::InOut};
        cursor = cursor + 1 == ringSize ? 0 : cursor + 1;
      }
      DepTask* task = &pair[flip];
      flip ^= 1;
      deps.registerTask(task, acc, accCount, 0);
      deps.release(task, 0);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);

  if (tid == 0) {
    gReg->deps->reset();
    delete gReg;
    gReg = nullptr;
  }
}

void BM_RegisterReused(benchmark::State& state) {
  registerRoundTrip(state, /*reuse=*/true);
}
void BM_RegisterFresh(benchmark::State& state) {
  registerRoundTrip(state, /*reuse=*/false);
}

/// Full runtime round trip, empty bodies.  Reused cycles kReusedVars
/// addresses within each taskwait window (each address re-registered
/// ~kBatch/kReusedVars times per window — the hpccg shape; the write
/// chains this builds are the point: re-registration of a known
/// address).  Fresh walks a ring much larger than the TLS cache.
constexpr std::size_t kReusedVars = 128;
constexpr std::size_t kFreshVars = std::size_t{1} << 16;

void spawnRoundTrip(benchmark::State& state, bool reuse) {
  const auto accCount = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kThreads = 4;
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, kThreads));
  Runtime rt(cfg);
  std::vector<long long> vars(reuse ? kReusedVars : kFreshVars);
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      Access acc[kMaxAccessesPerTask];
      for (std::size_t j = 0; j < accCount; ++j) {
        acc[j] = out(vars[cursor]);
        cursor = cursor + 1 == vars.size() ? 0 : cursor + 1;
      }
      rt.spawn(std::span<const Access>(acc, accCount), [] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_SpawnRoundTripReused(benchmark::State& state) {
  spawnRoundTrip(state, /*reuse=*/true);
}
void BM_SpawnRoundTripFresh(benchmark::State& state) {
  spawnRoundTrip(state, /*reuse=*/false);
}

}  // namespace

BENCHMARK(BM_TableLookupReused)
    ->ArgName("addrs")
    ->Arg(16)->Arg(64)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_RegisterReused)
    ->ArgName("acc")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_RegisterFresh)
    ->ArgName("acc")
    ->Arg(4)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_SpawnRoundTripReused)
    ->ArgName("acc")
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpawnRoundTripFresh)
    ->ArgName("acc")
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
