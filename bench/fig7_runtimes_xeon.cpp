// Figure 7 reproduction: the optimized runtime ("nanos6") versus the
// OpenMP-runtime architectural stand-ins on the Intel Xeon preset.
// Benchmarks: Heat, Dot Product, miniAMR, Cholesky.  Expected shape
// (paper §6.3): nanos6 best at small granularities; the work-stealing
// (LLVM-family) stand-in second; the central-mutex (GOMP) stand-in drops
// off first.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig7", ats::MachinePreset::Xeon,
                        {"heat", "dotprod", "miniamr", "cholesky"},
                        ats::bench::runtimeComparisonVariants());
  return 0;
}
