// §3.4 claim: "In microbenchmarks, we found a fourfold speedup on task
// scheduling using a DTLock compared to a PTLock, and a twelvefold
// speedup compared to serial task insertion thanks to the SPSC queues."
//
// This harness measures end-to-end scheduler throughput (tasks added and
// retrieved per second) for the three designs on the paper's
// single-creator pattern: one producer floods the scheduler with ready
// tasks while the other threads continuously request work.
//
//   serial_mutex  — every add and get under one OS mutex, tasks inserted
//                   serially by the creator (the "serial insertion" base)
//   ptlock        — PTLock-protected central scheduler ("w/o DTLock")
//   dtlock_spsc   — SPSC add-buffers + DTLock delegation with the §8
//                   flat-combining batched serve (the optimized default)
//   dtlock_spsc_serve1 — same scheduler, Listing-5 serve-one ablation
//                   (the pre-batching baseline; keep >= its old numbers)
//
// On a many-core host the ratios should approach the paper's 4x / 12x;
// on a timeshared single-core host the gaps compress (EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/topology.hpp"
#include "sched/central_mutex_scheduler.hpp"
#include "sched/policies.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"
#include "runtime/task.hpp"

namespace {

using namespace ats;

constexpr std::size_t kConsumers = 3;  // + 1 producer

/// Thread 0 produces; others consume.  items_processed counts retrievals.
void schedulerFlood(benchmark::State& state, Scheduler& sched,
                    std::vector<Task>& pool) {
  const std::size_t self = static_cast<std::size_t>(state.thread_index());
  std::size_t produced = 0;
  std::size_t got = 0;
  for (auto _ : state) {
    if (self == 0) {
      sched.addReadyTask(&pool[produced++ % pool.size()], 0);
    } else {
      if (sched.getReadyTask(self) != nullptr) ++got;
    }
  }
  if (self != 0) {
    state.SetItemsProcessed(static_cast<std::int64_t>(got));
  } else {
    // Drain what consumers did not take so the next repetition starts
    // from an empty scheduler.
    while (sched.getReadyTask(0) != nullptr) {
    }
  }
}

Topology benchTopo() {
  return makeTopology(MachinePreset::Host, kConsumers + 1);
}

void BM_Sched_SerialMutex(benchmark::State& state) {
  static CentralMutexScheduler sched(benchTopo());
  static std::vector<Task> pool(4096);
  schedulerFlood(state, sched, pool);
}

void BM_Sched_PTLock(benchmark::State& state) {
  static PTLockScheduler sched(benchTopo(),
                               std::make_unique<FifoPolicy>());
  static std::vector<Task> pool(4096);
  schedulerFlood(state, sched, pool);
}

void BM_Sched_DTLockSpsc(benchmark::State& state) {
  static SyncScheduler sched(benchTopo(),
                             std::make_unique<FifoPolicy>());
  static std::vector<Task> pool(4096);
  schedulerFlood(state, sched, pool);
}

void BM_Sched_DTLockSpscServe1(benchmark::State& state) {
  static SyncScheduler sched(benchTopo(), std::make_unique<FifoPolicy>(),
                             SyncScheduler::Options{.batchServe = false});
  static std::vector<Task> pool(4096);
  schedulerFlood(state, sched, pool);
}

}  // namespace

BENCHMARK(BM_Sched_SerialMutex)->Threads(kConsumers + 1)->UseRealTime();
BENCHMARK(BM_Sched_PTLock)->Threads(kConsumers + 1)->UseRealTime();
BENCHMARK(BM_Sched_DTLockSpsc)->Threads(kConsumers + 1)->UseRealTime();
BENCHMARK(BM_Sched_DTLockSpscServe1)->Threads(kConsumers + 1)->UseRealTime();

BENCHMARK_MAIN();
