// §2 claim: the wait-free Atomic State Machine makes dependency
// registration/release faster and more scalable than the fine-grained
// locking implementation it replaced.  Measures full task round trips
// (create + register + execute-empty-body + release + reclaim) per second
// through the complete runtime, for both dependency systems, on chain-
// heavy and independent access patterns.
#include <benchmark/benchmark.h>

#include "runtime/runtime.hpp"

namespace {

using namespace ats;

constexpr std::size_t kThreads = 4;
constexpr int kBatch = 2000;

void depsChainBatch(benchmark::State& state, DepsKind kind) {
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.deps = kind;
  Runtime rt(cfg);
  long long vars[16] = {};
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      long long& v = vars[i % 16];
      rt.spawn({inout(v)}, [&v] { ++v; });
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void depsIndependentBatch(benchmark::State& state, DepsKind kind) {
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.deps = kind;
  Runtime rt(cfg);
  std::vector<long long> vars(kBatch, 0);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      long long& v = vars[i];
      rt.spawn({out(v)}, [&v] { ++v; });
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void depsFanBatch(benchmark::State& state, DepsKind kind) {
  // One writer, many readers, repeat: exercises read-group propagation.
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.deps = kind;
  Runtime rt(cfg);
  long long x = 0;
  for (auto _ : state) {
    for (int round = 0; round < kBatch / 20; ++round) {
      rt.spawn({inout(x)}, [&x] { ++x; });
      for (int r = 0; r < 19; ++r)
        rt.spawn({in(x)}, [&x] { benchmark::DoNotOptimize(x); });
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * (kBatch / 20) * 20);
}

void BM_Deps_WaitFreeAsm_Chains(benchmark::State& s) {
  depsChainBatch(s, DepsKind::WaitFreeAsm);
}
void BM_Deps_FineGrainedLocks_Chains(benchmark::State& s) {
  depsChainBatch(s, DepsKind::FineGrainedLocks);
}
void BM_Deps_WaitFreeAsm_Independent(benchmark::State& s) {
  depsIndependentBatch(s, DepsKind::WaitFreeAsm);
}
void BM_Deps_FineGrainedLocks_Independent(benchmark::State& s) {
  depsIndependentBatch(s, DepsKind::FineGrainedLocks);
}
void BM_Deps_WaitFreeAsm_ReadFan(benchmark::State& s) {
  depsFanBatch(s, DepsKind::WaitFreeAsm);
}
void BM_Deps_FineGrainedLocks_ReadFan(benchmark::State& s) {
  depsFanBatch(s, DepsKind::FineGrainedLocks);
}

}  // namespace

BENCHMARK(BM_Deps_WaitFreeAsm_Chains)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deps_FineGrainedLocks_Chains)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deps_WaitFreeAsm_Independent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deps_FineGrainedLocks_Independent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deps_WaitFreeAsm_ReadFan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deps_FineGrainedLocks_ReadFan)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
