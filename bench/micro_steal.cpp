// The work-stealing scheduler's §3-style claims, measured at its three
// levels:
//
//  * ChaseLevDeque owner fast path: push+pop with no thief anywhere —
//    the no-shared-RMW cost the design exists for (compare
//    BM_SpscPushPop / BM_MutexDequePushPop in micro_spsc)
//  * steal throughput while 1..8 thieves gang up on one victim deque —
//    the CAS-contention profile of the top end
//  * the full runtime on an independent-tasks shape, WorkStealing vs
//    SyncDelegation: the workload with no dependency chain is where
//    decentralized deques should at least match central delegation
//
// All numbers compress toward noise on a 1-core host (see
// EXPERIMENTS.md "micro_steal"); the shapes are still CI-smokable.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "containers/chase_lev_deque.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ats;

constexpr std::size_t kThreads = 4;
constexpr int kBatch = 2000;

// Owner-only push+pop round trip: one relaxed slot store + one release
// store (push), one bottom store + one fence + one top load (pop).  No
// RMW on this path — regressions here mean the fast path picked one up.
void BM_ChaseLevPushPop(benchmark::State& state) {
  ChaseLevDeque<std::uint64_t> deque(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    deque.push(1);
    deque.pop(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevPushPop);

// Owner push + batch of pops, LIFO depth-first order: amortizes the
// per-op fence differently than strict alternation.
void BM_ChaseLevPushPopBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  ChaseLevDeque<std::uint64_t> deque(2 * batch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) deque.push(i);
    std::uint64_t v = 0;
    while (deque.pop(v)) sink += v;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ChaseLevPushPopBatch)->Arg(8)->Arg(64)->Arg(512);

// One owner refilling its deque while thread_index != 0 thieves steal:
// stolen items/sec as the thief count grows is the top-CAS contention
// curve.  Every thread runs the same iteration count, so the owner
// pushes (threads-1) elements per iteration and each thief steals one —
// supply equals demand and every variant terminates with the deque
// empty.  (Static for the same cross-variant reuse reason as
// BM_SpscCrossThread; ownership migrates to each variant's thread 0
// through google-benchmark's join barrier.)
void BM_ChaseLevStealThroughput(benchmark::State& state) {
  static ChaseLevDeque<std::uint64_t> deque(4096);
  const int thieves = state.threads() - 1;
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      for (int i = 0; i < thieves; ++i) deque.push(1);
      // Keep the deque shallow so thieves continuously hit the
      // few-element contention window, not a deep backlog.
      while (deque.sizeApprox() > 64) std::this_thread::yield();
    } else {
      std::uint64_t v = 0;
      while (deque.steal(v) !=
             ChaseLevDeque<std::uint64_t>::StealResult::Success) {
        if (deque.emptyApprox()) std::this_thread::yield();
      }
      benchmark::DoNotOptimize(v);
    }
  }
  // Count each crossed element once (on the owner's row).
  state.SetItemsProcessed(
      state.thread_index() == 0
          ? state.iterations() * static_cast<std::size_t>(thieves)
          : 0);
}
// Threads(n) = 1 owner + (n-1) thieves.
BENCHMARK(BM_ChaseLevStealThroughput)
    ->Threads(2)->Threads(3)->Threads(5)->Threads(9)
    ->UseRealTime();

// Full runtime, independent tasks (no dependency edges): every spawn is
// immediately ready, so throughput measures pure scheduling — the shape
// where per-CPU deques need no serialization at all while the
// delegation design still funnels through the DTLock.
void runIndependentTasks(benchmark::State& state, SchedulerKind kind) {
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, kThreads));
  cfg.scheduler = kind;
  Runtime rt(cfg);
  std::atomic<std::uint64_t> ran{0};
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
  }
  benchmark::DoNotOptimize(ran.load());
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_RuntimeIndependent_WorkSteal(benchmark::State& state) {
  runIndependentTasks(state, SchedulerKind::WorkStealing);
}
BENCHMARK(BM_RuntimeIndependent_WorkSteal)->Unit(benchmark::kMillisecond);

void BM_RuntimeIndependent_SyncDelegation(benchmark::State& state) {
  runIndependentTasks(state, SchedulerKind::SyncDelegation);
}
BENCHMARK(BM_RuntimeIndependent_SyncDelegation)
    ->Unit(benchmark::kMillisecond);

// The spawn-chain shape (inout chain serializes execution): work
// stealing has no batching lever here, so this is its worst case
// against batched delegation — reported for honesty, not victory.
void runChain(benchmark::State& state, SchedulerKind kind) {
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, kThreads));
  cfg.scheduler = kind;
  Runtime rt(cfg);
  long long chain = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rt.spawn({inout(chain)}, [&chain] { ++chain; });
    }
    rt.taskwait();
  }
  benchmark::DoNotOptimize(chain);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_RuntimeChain_WorkSteal(benchmark::State& state) {
  runChain(state, SchedulerKind::WorkStealing);
}
BENCHMARK(BM_RuntimeChain_WorkSteal)->Unit(benchmark::kMillisecond);

void BM_RuntimeChain_SyncDelegation(benchmark::State& state) {
  runChain(state, SchedulerKind::SyncDelegation);
}
BENCHMARK(BM_RuntimeChain_SyncDelegation)->Unit(benchmark::kMillisecond);

// stealProbeLimit sweep on the independent-tasks shape: on a one-domain
// topology the local list is always fully probed, so this knob only
// bites on multi-domain presets — swept on the Rome shape.
void BM_StealProbeLimit(benchmark::State& state) {
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Rome, kThreads));
  cfg.scheduler = SchedulerKind::WorkStealing;
  cfg.stealProbeLimit = static_cast<std::size_t>(state.range(0));
  Runtime rt(cfg);
  std::atomic<std::uint64_t> ran{0};
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
  }
  benchmark::DoNotOptimize(ran.load());
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_StealProbeLimit)
    ->Arg(1)->Arg(4)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
