// §5 claim: the tracing backend's overhead is low enough to leave the
// optimized runtime unperturbed.  Cost of one emit (ns/event), the cost
// of the disabled-tracer fast path, and the end-to-end task throughput
// delta with tracing on vs off.
#include <benchmark/benchmark.h>

#include "common/timing.hpp"
#include "instr/tracer.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ats;

void BM_EmitCost(benchmark::State& state) {
  Tracer tracer(1, 1u << 20);
  // Rewind just before the keep-oldest ring fills so every timed emit
  // pays the real record-write path (TSC read + 24B store + head
  // publish), never the cheaper saturated drop-bump that
  // BM_EmitCostRingFull prices separately.  The amortized reset cost
  // (a handful of stores per 2^20 emits) is noise.
  std::uint64_t sinceReset = 0;
  for (auto _ : state) {
    tracer.emit(0, TraceEvent::TaskStart, 42);
    if (++sinceReset == tracer.capacityPerStream()) {
      sinceReset = 0;
      tracer.reset();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitCost);

void BM_EmitCostRingFull(benchmark::State& state) {
  // Saturated ring: emit degrades to a drop count bump.
  Tracer tracer(1, 16);
  for (int i = 0; i < 64; ++i) tracer.emit(0, TraceEvent::TaskStart);
  for (auto _ : state)
    tracer.emit(0, TraceEvent::TaskStart);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitCostRingFull);

void BM_DisabledTracerCheck(benchmark::State& state) {
  // The runtime's hot paths guard every emit with a null check; this is
  // that fast path.
  Tracer* tracer = nullptr;
  benchmark::DoNotOptimize(tracer);
  std::uint64_t count = 0;
  for (auto _ : state) {
    if (tracer != nullptr) tracer->emit(0, TraceEvent::TaskStart);
    benchmark::DoNotOptimize(++count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledTracerCheck);

void runtimeThroughput(benchmark::State& state, bool traced) {
  // Deliberately ONE tracer across every iteration: a deployed §5
  // tracer is a bounded observation window (fig-harness sized rings),
  // so a long traced run pays the record-write path while the window
  // is open and the saturated drop-bump after it fills — both are the
  // real cost of leaving the tracer attached.  The window boundary is
  // disclosed, not hidden: the dropped-events count is exported as a
  // benchmark counter (nonzero once the run outlives the window).
  Tracer tracer(4, 1u << 18);
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host, 4));
  if (traced) cfg.tracer = &tracer;
  Runtime rt(cfg);
  long long x = 0;
  constexpr int kBatch = 2000;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) rt.spawn({inout(x)}, [&x] { ++x; });
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  if (traced) {
    state.counters["dropped_events"] = static_cast<double>(tracer.dropped());
    state.counters["recorded_events"] =
        static_cast<double>(tracer.collect().size());
  }
}

void BM_RuntimeUntraced(benchmark::State& state) {
  runtimeThroughput(state, false);
}
void BM_RuntimeTraced(benchmark::State& state) {
  runtimeThroughput(state, true);
}
BENCHMARK(BM_RuntimeUntraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuntimeTraced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
