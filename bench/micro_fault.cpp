// Prices the failure-domain machinery (ISSUE 10) at its three cost
// points:
//
//   * BM_FailpointUnarmed: one ATS_FAILPOINT pass with the site never
//     armed — the price every production chokepoint pays forever.  The
//     macro compiles to a function-local static bind (one-time) plus a
//     single relaxed load; the acceptance bar is <1ns/check.
//   * BM_FailpointArmedMiss: the same site armed at probability 0 — the
//     full evaluate() slow path (counter bump, RNG draw, threshold
//     compare) without firing.  This is the worst steady-state cost an
//     ATS_FAILPOINTS drill adds to a chokepoint it never trips.
//   * BM_SpawnRoundTripGuarded: byte-for-byte the micro_spawn
//     BM_SpawnRoundTripReused loop (same kBatch/kReusedVars/threads/
//     config), now running through the catch frame + skip check +
//     unarmed task_invoke failpoint that executeTask wraps every body
//     in.  Compared against the PR-9 micro_spawn baseline by
//     bench_compare.py; the acceptance bar is within 5%.
//   * BM_CancelDrainDepth: cancel() latency — how long taskwait()
//     takes to drain an already-built inout chain of depth N once the
//     graph is poisoned.  Skipped tasks still pay dequeue + release,
//     so this scales with depth; the number bounds how long a
//     cancelled graph holds its workers.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <span>
#include <vector>

#include "common/failpoint.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace ats;

constexpr int kBatch = 2000;

/// The unarmed fast path: what every planted chokepoint costs when no
/// drill is running.  ClobberMemory keeps the relaxed load inside the
/// loop — without it the compiler may hoist the (legitimately
/// hoistable) load and price zero checks.
void BM_FailpointUnarmed(benchmark::State& state) {
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ATS_FAILPOINT(bench_unarmed);
      benchmark::ClobberMemory();
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// The armed slow path that never fires: probability 0 forces every
/// pass through evaluate()'s counter + RNG + compare and back.
void BM_FailpointArmedMiss(benchmark::State& state) {
  Failpoint& site = FailpointRegistry::instance().site("bench_armed_miss");
  site.arm(FailpointMode::Throw, /*prob=*/0.0, /*count=*/0);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ATS_FAILPOINT(bench_armed_miss);
      benchmark::ClobberMemory();
    }
  }
  site.disarm();
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Mirror of micro_spawn's BM_SpawnRoundTripReused (same constants, same
/// config) — the spawn -> ready -> run -> release round trip now pays
/// the executeTask catch frame on every body.  bench_compare.py holds
/// this within 5% of the unguarded baseline.
constexpr std::size_t kReusedVars = 128;

void BM_SpawnRoundTripGuarded(benchmark::State& state) {
  const auto accCount = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kThreads = 4;
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, kThreads));
  Runtime rt(cfg);
  std::vector<long long> vars(kReusedVars);
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      Access acc[kMaxAccessesPerTask];
      for (std::size_t j = 0; j < accCount; ++j) {
        acc[j] = out(vars[cursor]);
        cursor = cursor + 1 == vars.size() ? 0 : cursor + 1;
      }
      rt.spawn(std::span<const Access>(acc, accCount), [] {});
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Cancellation drain: build an inout chain of `depth` tasks behind a
/// gate task, poison the graph, open the gate, and time how long
/// taskwait() takes to skip-and-release the whole chain.  Manual time:
/// only the drain is on the clock, not the chain construction.
void BM_CancelDrainDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kThreads = 4;
  RuntimeConfig cfg =
      optimizedConfig(makeTopology(MachinePreset::Host, kThreads));
  Runtime rt(cfg);
  long long var = 0;
  for (auto _ : state) {
    std::atomic<bool> started{false};
    std::atomic<bool> gate{false};
    rt.spawn(std::span<const Access>(), [&] {
      started.store(true, std::memory_order_release);
      while (!gate.load(std::memory_order_acquire)) {
      }
    });
    for (std::size_t i = 0; i < depth; ++i) rt.spawn({inout(var)}, [] {});
    // The gate task must be RUNNING (already dequeued) before cancel():
    // otherwise the skip-at-dequeue check would drop it too and the
    // depth chain might partially execute before the poison lands.
    while (!started.load(std::memory_order_acquire)) {
    }
    rt.cancel();
    gate.store(true, std::memory_order_release);
    const auto begin = std::chrono::steady_clock::now();
    rt.taskwait();
    const auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(end - begin).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(depth));
}

}  // namespace

BENCHMARK(BM_FailpointUnarmed);
BENCHMARK(BM_FailpointArmedMiss);
BENCHMARK(BM_SpawnRoundTripGuarded)
    ->ArgName("acc")
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CancelDrainDepth)
    ->ArgName("depth")
    ->Arg(256)->Arg(1024)->Arg(4096)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
