// Ablation sweeps for the design choices DESIGN.md calls out beyond the
// paper's three headline optimizations:
//
//  * SPSC add-buffer capacity (paper Listing 5 hardcodes 100; we default
//    to 256 — how sensitive is throughput to it, including the overflow
//    help-drain path at tiny capacities?)
//  * add-buffer layout: one queue per NUMA domain vs a single shared one
//    (§3.1: "can be configured from a single one to one per core")
//  * scheduling policy plugged into the SyncScheduler (FIFO / LIFO /
//    NUMA-aware FIFO): the §3.2 extensibility argument, measured
//  * serve-one delegation (Listing 5) vs the §8 flat-combining batch
//    serve
//
// Each configuration runs the same fine-grained chain workload through
// the full runtime; items/sec = tasks executed per second.
#include <benchmark/benchmark.h>

#include "runtime/runtime.hpp"
#include "sched/policies.hpp"

namespace {

using namespace ats;

constexpr std::size_t kThreads = 4;
constexpr int kBatch = 2000;

void runWorkload(benchmark::State& state, const RuntimeConfig& cfg) {
  Runtime rt(cfg);
  long long vars[32] = {};
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      long long& v = vars[i % 32];
      rt.spawn({inout(v)}, [&v] { ++v; });
    }
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_SpscCapacity(benchmark::State& state) {
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.spscCapacity = static_cast<std::size_t>(state.range(0));
  runWorkload(state, cfg);
}
BENCHMARK(BM_SpscCapacity)
    ->Arg(4)->Arg(32)->Arg(100)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_AddBufferLayout(benchmark::State& state) {
  // Ready-queue layout under the NUMA-aware policy, Rome preset shape
  // at kThreads workers: range(0)==1 keeps the preset's multi-domain
  // layout (one ready FIFO per domain, local-first), 0 collapses to a
  // single domain (one shared FIFO).  The domain count feeds
  // NumaFifoPolicy — under the default Fifo policy both shapes are
  // byte-identical, so the sweep pins the policy explicitly.  (Per-NUMA
  // *add-buffer* sharding is still one-SPSC-per-slot either way; see
  // ROADMAP.)
  Topology topo = makeTopology(MachinePreset::Rome, kThreads);
  if (state.range(0) == 0) topo.numNumaDomains = 1;
  RuntimeConfig cfg = optimizedConfig(topo);
  cfg.policy = PolicyKind::NumaFifo;
  runWorkload(state, cfg);
}
BENCHMARK(BM_AddBufferLayout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Policy(benchmark::State& state) {
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.policy = static_cast<PolicyKind>(state.range(0));
  runWorkload(state, cfg);
}
BENCHMARK(BM_Policy)
    ->Arg(int(PolicyKind::Fifo))
    ->Arg(int(PolicyKind::Lifo))
    ->Arg(int(PolicyKind::NumaFifo))
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerKind(benchmark::State& state) {
  // The scheduler architectures on identical deps/alloc.  WorkStealing
  // is the real per-deque Chase–Lev design as of PR 6 (micro_steal digs
  // into its internals); the old "Hierarchical" (§7) spelling named a
  // design this repo never grew and is dropped from the sweep.
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.scheduler = static_cast<SchedulerKind>(state.range(0));
  runWorkload(state, cfg);
}
BENCHMARK(BM_SchedulerKind)
    ->Arg(int(SchedulerKind::SyncDelegation))
    ->Arg(int(SchedulerKind::PTLockCentral))
    ->Arg(int(SchedulerKind::WorkStealing))
    ->Arg(int(SchedulerKind::CentralMutex))
    ->Unit(benchmark::kMillisecond);

void BM_ServeMode(benchmark::State& state) {
  // batch=0: Listing-5 serve-one; batch=1: §8 flat-combining batched
  // serve (the default).  The contended chain workload is where the
  // batch pays: every worker delegates continuously while the chain
  // serializes execution.  Expect batch >= serve-one (within noise on
  // 1-core hosts; see EXPERIMENTS.md).
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.schedBatchServe = state.range(0) != 0;
  runWorkload(state, cfg);
}
BENCHMARK(BM_ServeMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ServeBurst(benchmark::State& state) {
  // Burst-cap sweep for the batched serve: 1 degenerates to serve-one
  // cost plus the snapshot, 64 is kMaxServeBurst.
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   kThreads));
  cfg.serveBurst = static_cast<std::size_t>(state.range(0));
  runWorkload(state, cfg);
}
BENCHMARK(BM_ServeBurst)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
