// The NUMA-locality hot-path claims, measured at the three layers the
// domain sharding touches:
//
//  * AddBufferSet drain: a flat everything-pass over 128+1 Rome rings
//    vs a drainDomain pass over the 16 rings that actually hold work —
//    the cache-line-touch reduction the shards exist for
//  * the full runtime with the batched serve grouping waiters by domain
//    (schedWaiterLocality) vs the holder-locality ablation, NumaFifo
//    policy on the Rome preset
//  * pool depot churn with every thread on one shared shard vs each
//    thread bound to its own domain shard — the depot-lock contention
//    curve from 1 to 8 threads
//
// On a 1-core CI host the runtime pair compresses toward a tie (workers
// time-slice one core, so locality cannot pay; see EXPERIMENTS.md
// "micro_numa"); the drain and depot pairs keep their shape anywhere.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "memory/pool_allocator.hpp"
#include "runtime/runtime.hpp"
#include "sched/add_buffer_set.hpp"
#include "sched/policies.hpp"

namespace {

using namespace ats;

constexpr std::size_t kWorkers = 4;
constexpr int kBatch = 2000;

// ------------------------------------------------ add-buffer drain pair
//
// Producers live on domain 0 only (the batched serve's common case: a
// waiter group's whole domain published work, the other 7 domains'
// rings are empty).  The flat drain still walks all 129 Rome slots;
// drainDomain walks the 16 (+ the folded spawner slot) that can hold
// anything.

constexpr std::size_t kDrainFill = 256;

void drainPair(benchmark::State& state, bool sharded) {
  const Topology topo = makeTopology(MachinePreset::Rome);  // 128c / 8d
  AddBufferSet buffers(topo, 64);
  FifoPolicy sink;
  std::vector<Task> pool(kDrainFill);
  Task* out = nullptr;
  for (auto _ : state) {
    state.PauseTiming();
    // Spread the refill across domain 0's rings (16 producers' worth).
    for (std::size_t i = 0; i < kDrainFill; ++i) {
      benchmark::DoNotOptimize(
          buffers.tryPush(&pool[i], i % topo.cpusPerDomain()));
    }
    state.ResumeTiming();
    const std::size_t drained = sharded ? buffers.drainDomain(sink, 0)
                                        : buffers.drainInto(sink);
    benchmark::DoNotOptimize(drained);
    state.PauseTiming();
    while ((out = sink.getTask(0)) != nullptr) benchmark::DoNotOptimize(out);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDrainFill));
}

void BM_AddBufferDrainFlat(benchmark::State& state) {
  drainPair(state, /*sharded=*/false);
}
BENCHMARK(BM_AddBufferDrainFlat);

void BM_AddBufferDrainOwnDomain(benchmark::State& state) {
  drainPair(state, /*sharded=*/true);
}
BENCHMARK(BM_AddBufferDrainOwnDomain);

// ------------------------------------------- waiter-locality serve pair
//
// Full runtime on the Rome preset shrunk to 4 workers (still
// multi-domain after makeTopology's shrink), NumaFifo policy so the
// locality view actually routes: independent tasks, so every spawn
// funnels through the batched serve and the knob is the only delta.

void servePair(benchmark::State& state, bool waiterLocality) {
  RuntimeConfig cfg = makeRomeConfig(kWorkers);
  cfg.policy = PolicyKind::NumaFifo;
  cfg.schedWaiterLocality = waiterLocality;
  Runtime rt(cfg);
  std::atomic<std::uint64_t> ran{0};
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      rt.spawn({}, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
  }
  benchmark::DoNotOptimize(ran.load());
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_ServeWaiterLocality(benchmark::State& state) {
  servePair(state, /*waiterLocality=*/true);
}
BENCHMARK(BM_ServeWaiterLocality)->Unit(benchmark::kMillisecond);

void BM_ServeHolderLocality(benchmark::State& state) {
  servePair(state, /*waiterLocality=*/false);
}
BENCHMARK(BM_ServeHolderLocality)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- depot contention pair
//
// Each thread churns enough live blocks to overflow its magazine every
// round, so every round takes the depot lock.  Shared: everyone on
// shard 0 (the pre-shard world).  Per-domain: thread i on shard i — the
// locks never meet.  A class no other bench traffic uses keeps the
// depots ours.

constexpr std::size_t kDepotClassSize = 3000;

void depotChurn(benchmark::State& state, bool perDomainShards) {
  PoolAllocator& pool = PoolAllocator::instance();
  pool.setThreadDomain(
      perDomainShards ? static_cast<std::size_t>(state.thread_index()) : 0);
  constexpr std::size_t kLive = PoolAllocator::kMagazineCapacity + 8;
  std::vector<void*> live(kLive);
  for (auto _ : state) {
    for (void*& p : live) p = pool.allocate(kDepotClassSize);
    for (void* p : live) pool.deallocate(p, kDepotClassSize);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLive));
}

void BM_DepotChurnSharedShard(benchmark::State& state) {
  depotChurn(state, /*perDomainShards=*/false);
}
BENCHMARK(BM_DepotChurnSharedShard)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_DepotChurnPerDomainShard(benchmark::State& state) {
  depotChurn(state, /*perDomainShards=*/true);
}
BENCHMARK(BM_DepotChurnPerDomainShard)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
