// Figure 10 reproduction: instrumented comparison of the scheduler under
// the plain PTLock versus the wait-free add-buffers + DTLock combination,
// on a fine-grained miniAMR-style task flood (the workload Fig. 10's
// traces show).
//
// The paper's figure is a timeline view; its *claims* are quantitative,
// and this harness reproduces those numbers from the same kind of trace:
//  * PTLock variant: the task-creating core fights every idle worker for
//    the shared lock, ready tasks cannot enter fast enough, and "most
//    cores starve" -> higher mean idle (starvation) percentage.
//  * DTLock variant: creation proceeds independently through the SPSC
//    buffers (SchedDrain events) and the lock owner serves waiting cores
//    (SchedServe events) -> lower starvation.
//
// Trace files (CTF-lite binary + text rendering) are written next to the
// binary for inspection with examples/trace_inspection.
#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "common/env.hpp"
#include "instr/trace_analyzer.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"
#include "runtime/runtime.hpp"

using namespace ats;

namespace {

TraceAnalysis runVariant(const char* label, SchedulerKind sched,
                         std::size_t threads, const std::string& traceDir) {
  Tracer tracer(threads, 1u << 18);
  RuntimeConfig cfg = optimizedConfig(makeTopology(MachinePreset::Host,
                                                   threads));
  cfg.scheduler = sched;
  cfg.tracer = &tracer;

  auto app = makeApp("miniamr", envFlag("ATS_FULL") ? AppScale::Full
                                                    : AppScale::Quick);
  const auto sizes = app->defaultBlockSizes();
  // Repeat the flood so the traced window is long enough for the
  // starvation percentages to mean something (one quick-scale run is
  // over in a millisecond on a small host).
  const std::size_t reps = envSize("ATS_REPS", 5);
  {
    Runtime rt(cfg);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const AppResult r = app->run(rt, sizes.back());  // finest granularity
      if (!r.verified) {
        std::fprintf(stderr, "FATAL: miniamr failed verification\n");
        std::exit(1);
      }
    }
  }

  const auto records = tracer.collect();
  const TraceAnalysis a = analyzeTrace(records, threads);
  TraceWriter::writeBinary(traceDir + "/fig10_" + label + ".ats", records);
  TraceWriter::writeText(traceDir + "/fig10_" + label + ".txt", records);

  std::printf("[%s]\n%s", label, formatAnalysis(a).c_str());
  std::printf("events=%zu dropped=%llu\n", records.size(),
              static_cast<unsigned long long>(tracer.dropped()));
  std::printf("%s\n", renderTimeline(records, threads).c_str());
  return a;
}

}  // namespace

int main() {
  const std::size_t threads = envSize("ATS_THREADS", 4);
  const std::string traceDir = envString("ATS_TRACE_DIR", ".");
  std::printf("# fig10: scheduler lock comparison under fine-grained "
              "miniAMR flood (%zu threads)\n\n", threads);

  const TraceAnalysis dt =
      runVariant("dtlock", SchedulerKind::SyncDelegation, threads, traceDir);
  const TraceAnalysis pt =
      runVariant("ptlock", SchedulerKind::PTLockCentral, threads, traceDir);

  std::printf("# paper claim: the PTLock variant starves cores; the "
              "DTLock variant keeps them fed\n");
  std::printf("starvation(ptlock)=%.1f%%  starvation(dtlock)=%.1f%%  "
              "serves(dtlock)=%llu  drains(dtlock)=%llu\n",
              pt.meanIdlePct, dt.meanIdlePct,
              static_cast<unsigned long long>(dt.serveCount),
              static_cast<unsigned long long>(dt.drainCount));
  return 0;
}
