// §3.2 claim: "PTLocks perform as well as more complex designs such as
// MCS or Ticket Locks Augmented with a Waiting Array (TWA)", and plain
// Ticket Locks degrade under load.  Contended critical-section throughput
// for every lock in the suite, at 1/2/4/8 threads.
#include <benchmark/benchmark.h>

#include <mutex>

#include "locks/locks.hpp"

namespace {

using namespace ats;

// Tiny critical section (a counter bump) maximizes the share of lock
// overhead in the measurement — the §3.2 regime.
template <typename LockT>
void contendedCounter(benchmark::State& state, LockT& lock,
                      std::uint64_t& counter) {
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(++counter);
    lock.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpinLock(benchmark::State& state) {
  static SpinLock lock;
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}
void BM_TicketLock(benchmark::State& state) {
  static TicketLock lock;
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}
void BM_PTLock(benchmark::State& state) {
  static PTLock lock(64);
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}
void BM_McsLock(benchmark::State& state) {
  static McsLock lock;
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}
void BM_TWALock(benchmark::State& state) {
  static TWALock lock;
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}
void BM_StdMutex(benchmark::State& state) {
  static std::mutex lock;
  static std::uint64_t counter = 0;
  contendedCounter(state, lock, counter);
}

}  // namespace

BENCHMARK(BM_SpinLock)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_TicketLock)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_PTLock)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_McsLock)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_TWALock)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_StdMutex)->ThreadRange(1, 8)->UseRealTime();

BENCHMARK_MAIN();
