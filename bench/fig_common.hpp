#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/topology.hpp"
#include "runtime/runtime_config.hpp"

namespace ats::bench {

/// One runtime variant (a curve in a paper figure).
struct Variant {
  std::string label;
  RuntimeConfig (*make)(const Topology&);
};

/// The four ablation curves of Figures 4-6.
const std::vector<Variant>& ablationVariants();

/// The runtime-comparison curves of Figures 7-9.  "nanos6" is the fully
/// optimized runtime; "gcc-like" and "llvm-like" are the architectural
/// stand-ins for GOMP and the LLVM-family runtimes (the paper notes
/// Intel's and AMD AOCC's runtimes are LLVM-based, and measures AOCC
/// tying LLVM): a central-mutex scheduler and the real Chase–Lev
/// work-stealing scheduler respectively.
const std::vector<Variant>& runtimeComparisonVariants();

/// Sweep parameters resolved from the environment:
///   ATS_THREADS  worker threads   (default: 4 quick / preset count full)
///   ATS_FULL     full paper-sized sweep (default: quick)
///   ATS_REPS     repetitions      (default: 2 quick / 5 full)
///   ATS_TRACE_DIR where fig10/fig11 write trace files (default: ".")
struct SweepConfig {
  Topology topo;
  std::size_t reps = 2;
  AppScale scale = AppScale::Quick;
  std::size_t maxPoints = 5;  ///< granularity points per curve (quick cap)
};

SweepConfig resolveSweepConfig(MachinePreset preset);

/// Run one paper figure: for each app, sweep block sizes on every
/// variant, compute the paper's efficiency metric (percent of the peak
/// performance observed across the app's whole grid), and print one table
/// per app:
///
///   # fig4 lulesh (xeon preset, 4 threads, 2 reps)
///   grain_work_units  optimized  wo_jemalloc  wo_waitfree_deps  wo_dtlock
///   2.1e6             100.0      97.3         95.1              98.8
///   ...
///
/// Every run is verified against the app's serial reference; a
/// verification failure aborts the figure (a benchmark that computes the
/// wrong answer measures nothing).
void runFigure(const std::string& figure, MachinePreset preset,
               const std::vector<std::string>& apps,
               const std::vector<Variant>& variants);

}  // namespace ats::bench
