// Figure 8 reproduction: runtime comparison on the AMD Rome preset.
// Benchmarks: HPCCG, NBody, miniAMR, Matmul.  The paper's AOCC runtime is
// LLVM-based and ties the LLVM curve, so the llvm_like stand-in covers
// both.  llvm_like is the real per-CPU Chase–Lev work-stealing scheduler
// (it was a relabeled SyncScheduler before PR 6), so this figure now
// compares genuinely different architectures, which matters most on
// Rome's 8 NUMA domains: the thief probe order is NUMA-local-first.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig8", ats::MachinePreset::Rome,
                        {"hpccg", "nbody", "miniamr", "matmul"},
                        ats::bench::runtimeComparisonVariants());
  return 0;
}
