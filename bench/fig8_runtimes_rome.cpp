// Figure 8 reproduction: runtime comparison on the AMD Rome preset.
// Benchmarks: HPCCG, NBody, miniAMR, Matmul.  The paper's AOCC runtime is
// LLVM-based and ties the LLVM curve, so the llvm_like stand-in covers
// both.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig8", ats::MachinePreset::Rome,
                        {"hpccg", "nbody", "miniamr", "matmul"},
                        ats::bench::runtimeComparisonVariants());
  return 0;
}
