// Figure 6 reproduction: the ablation sweep on the ARM Graviton2 preset
// (64 threads, single NUMA domain — the paper notes behaviours differ
// here "due to the lack of NUMA effects").  Benchmarks: Heat, HPCCG,
// miniAMR, Matmul.
#include "bench/fig_common.hpp"

int main() {
  ats::bench::runFigure("fig6", ats::MachinePreset::Graviton,
                        {"heat", "hpccg", "miniamr", "matmul"},
                        ats::bench::ablationVariants());
  return 0;
}
