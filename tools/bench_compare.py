#!/usr/bin/env python3
"""Diff two Google Benchmark JSON files and print per-benchmark deltas.

The CI tier-1 job uploads a `bench-json` artifact (BENCH_*.json) per
run; this tool turns two of those into a perf-trajectory table:

    tools/bench_compare.py old/BENCH_micro_ablation.json \\
                           new/BENCH_micro_ablation.json

For each benchmark name present in both files it prints the old and new
primary metric (items_per_second when the bench reports it, real_time
otherwise) and the relative delta.  Positive deltas mean the NEW run is
better: items/sec counts up, time counts down.  Under
--benchmark_repetitions a benchmark appears as several same-named
iteration rows plus mean/median/stddev aggregates; the tool averages
the iteration rows per name (equivalent to the mean aggregate) so no
single noisy repetition decides a delta and aggregates never
double-count.

Exit status is 0 unless --fail-below is given, in which case any
benchmark whose delta falls below the threshold (percent, e.g. -10)
fails the run — the hook a future CI perf gate can use.

Stdlib only; no third-party deps.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> (metric_value, metric_kind) for the real benchmark rows.

    Same-named iteration rows (one per --benchmark_repetitions run) are
    averaged; aggregate rows are skipped so they cannot double-count.
    """
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    sums = {}
    for bench in data.get("benchmarks", []):
        # Aggregates carry run_type == "aggregate"; plain runs either say
        # "iteration" or (older libbenchmark) omit the field.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        if name is None:
            continue
        if "items_per_second" in bench:
            value, kind = float(bench["items_per_second"]), "items/s"
        elif "real_time" in bench:
            value, kind = float(bench["real_time"]), bench.get("time_unit", "ns")
        else:
            continue
        total, count, prev_kind = sums.get(name, (0.0, 0, kind))
        if prev_kind != kind:
            continue  # metric kind changed mid-file; keep the first kind
        sums[name] = (total + value, count + 1, kind)
    return {
        name: (total / count, kind)
        for name, (total, count, kind) in sums.items()
    }


def delta_pct(old, new, kind):
    """Relative improvement in percent; sign normalized so + is better."""
    if old == 0:
        return 0.0
    raw = (new - old) / old * 100.0
    return raw if kind == "items/s" else -raw


def format_value(value, kind):
    if kind == "items/s":
        return f"{value:,.0f} {kind}"
    return f"{value:,.2f} {kind}"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("old", help="baseline benchmark JSON")
    parser.add_argument("new", help="candidate benchmark JSON")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if any benchmark's delta is below PCT percent "
        "(e.g. -10 tolerates up to a 10%% regression)",
    )
    args = parser.parse_args(argv)

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)

    common = [name for name in old if name in new]
    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'old':>18}  {'new':>18}  {'delta':>8}")
    failed = []
    for name in common:
        old_value, old_kind = old[name]
        new_value, new_kind = new[name]
        if old_kind != new_kind:
            print(f"{name:<{width}}  metric kind changed "
                  f"({old_kind} -> {new_kind}); not comparable")
            continue
        pct = delta_pct(old_value, new_value, old_kind)
        print(
            f"{name:<{width}}  {format_value(old_value, old_kind):>18}  "
            f"{format_value(new_value, new_kind):>18}  {pct:>+7.1f}%"
        )
        if args.fail_below is not None and pct < args.fail_below:
            failed.append((name, pct))

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {args.old}: " + ", ".join(only_old))
    if only_new:
        print(f"only in {args.new}: " + ", ".join(only_new))

    if failed:
        print(
            f"\nFAIL: {len(failed)} benchmark(s) regressed past "
            f"{args.fail_below}%:",
            file=sys.stderr,
        )
        for name, pct in failed:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
