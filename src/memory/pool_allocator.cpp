#include "memory/pool_allocator.hpp"

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>

#include "common/failpoint.hpp"

namespace ats {

namespace {

/// Size classes (header included), multiples of 16 so every block — and
/// therefore every user pointer at block+16 — keeps fundamental
/// alignment.  ~1.5x spacing caps internal fragmentation at ~33%.
constexpr std::array<std::size_t, PoolAllocator::kNumClasses> kClassSizes =
    {32,   48,   64,   96,   128,  192,  256,  384,  512,
     768,  1024, 1536, 2048, 3072, 4096, 6144, 8192};

static_assert(kClassSizes.back() == PoolAllocator::kMaxBlockSize);

/// need/16 -> class index, precomputed so the allocation fast path does
/// one table load instead of a class scan.
constexpr auto kClassLut = [] {
  std::array<std::uint8_t, PoolAllocator::kMaxBlockSize / 16 + 1> lut{};
  std::size_t cls = 0;
  for (std::size_t slot = 0; slot < lut.size(); ++slot) {
    const std::size_t need = slot * 16;
    while (kClassSizes[cls] < need) ++cls;
    lut[slot] = static_cast<std::uint8_t>(cls);
  }
  return lut;
}();

std::size_t classIndexFor(std::size_t need) {
  assert(need <= PoolAllocator::kMaxBlockSize);
  return kClassLut[(need + 15) / 16];
}

/// Freelist links live in the first user word of a free block (the
/// header stays intact so a drained remote block still knows its
/// class).  memcpy keeps the type-punning defined; it compiles to one
/// mov.
void* readLink(void* block) {
  void* next;
  std::memcpy(&next, static_cast<char*>(block) + PoolAllocator::kHeaderBytes,
              sizeof(void*));
  return next;
}

void writeLink(void* block, void* next) {
  std::memcpy(static_cast<char*>(block) + PoolAllocator::kHeaderBytes, &next,
              sizeof(void*));
}

/// Target slab size; small classes get many blocks per chunk, the
/// largest still gets 8.
constexpr std::size_t kChunkTargetBytes = 64 * 1024;

#ifdef NDEBUG
constexpr bool kDefaultPoison = false;
#else
constexpr bool kDefaultPoison = true;
#endif

}  // namespace

/// Per-block prefix.  `owner` is (re)stamped at every allocation, so a
/// block always frees back toward the cache that last handed it out;
/// `classIdx` is stamped once at carve time and never changes.
struct BlockHeader {
  PoolThreadCache* owner;
  std::uint32_t classIdx;
  std::uint32_t canary;

  static constexpr std::uint32_t kCanary = 0xA75A110C;
};

static_assert(sizeof(BlockHeader) == PoolAllocator::kHeaderBytes);
static_assert(alignof(BlockHeader) <= PoolAllocator::kHeaderBytes);

class PoolThreadCache {
 public:
  struct Magazine {
    void* slots[PoolAllocator::kMagazineCapacity];
    std::size_t count = 0;
  };

  Magazine mags[PoolAllocator::kNumClasses];

  /// MPSC Treiber stack of blocks freed by other threads: anyone
  /// pushes, only the owning thread drains (single exchange).
  std::atomic<void*> remoteHead{nullptr};
  std::atomic<std::size_t> remotePending{0};

  PoolThreadCache* nextInactive = nullptr;

  /// Depot shard this cache refills from / flushes to.  (Re)stamped
  /// from the adopting thread's domain binding each time a thread picks
  /// the cache up, so a migrated cache follows its new owner's domain.
  std::size_t depotShard = 0;

  /// Thread-exit hook target; lives here because PoolThreadCache is the
  /// pool's named friend and the TLS holder below is not.
  static void retire(PoolThreadCache* cache) {
    PoolAllocator::instance().retireCache(cache);
  }
};

namespace {

/// The calling thread's cache for the (singleton) pool.  The holder's
/// destructor retires the cache at thread exit so its blocks go back to
/// the depot instead of idling in dead magazines.
thread_local struct TlsCacheSlot {
  PoolThreadCache* cache = nullptr;
  ~TlsCacheSlot() {
    if (cache != nullptr) PoolThreadCache::retire(cache);
    // Null the slot: a pool free from a later-running TLS destructor on
    // this thread must take the remote path, not stash into a cache
    // another thread may already have adopted.
    cache = nullptr;
  }
} tlsCacheSlot;

/// The calling thread's depot-shard binding (setThreadDomain).  Kept
/// outside the cache so it survives cache adoption and is readable
/// before a cache exists.
thread_local std::size_t tlsDepotShard = 0;

void pushRemote(PoolThreadCache* owner, void* block) {
  void* head = owner->remoteHead.load(std::memory_order_relaxed);
  do {
    writeLink(block, head);
  } while (!owner->remoteHead.compare_exchange_weak(
      head, block, std::memory_order_release, std::memory_order_relaxed));
  owner->remotePending.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

PoolAllocator::PoolAllocator() : poison_(kDefaultPoison) {}

PoolAllocator& PoolAllocator::instance() {
  // Deliberately leaked: thread-local cache destructors (any thread,
  // any shutdown order) must always find the pool alive.
  static PoolAllocator* inst = new PoolAllocator();
  return *inst;
}

std::size_t PoolAllocator::blockSizeFor(std::size_t userSize) {
  if (userSize > kMaxPooledSize) return 0;
  return kClassSizes[classIndexFor(userSize + kHeaderBytes)];
}

PoolThreadCache& PoolAllocator::localCache() {
  PoolThreadCache* cache = tlsCacheSlot.cache;
  if (cache == nullptr) {
    std::lock_guard<SpinLock> guard(cacheLock_);
    if (inactiveHead_ != nullptr) {
      cache = inactiveHead_;
      inactiveHead_ = cache->nextInactive;
      cache->nextInactive = nullptr;
    } else {
      caches_.push_back(std::make_unique<PoolThreadCache>());
      cache = caches_.back().get();
    }
    cache->depotShard = tlsDepotShard;
    tlsCacheSlot.cache = cache;
  }
  return *cache;
}

void PoolAllocator::setThreadDomain(std::size_t domain) {
  const std::size_t shard = domain % kNumDepotShards;
  tlsDepotShard = shard;
  if (tlsCacheSlot.cache != nullptr) tlsCacheSlot.cache->depotShard = shard;
}

void* PoolAllocator::allocate(std::size_t size) {
  // Compare before adding the header: size + kHeaderBytes would wrap
  // for requests near SIZE_MAX and route them to a tiny class.
  if (size > kMaxPooledSize) return ::operator new(size);
  const std::size_t need = size + kHeaderBytes;

  const std::size_t cls = classIndexFor(need);
  PoolThreadCache& cache = localCache();
  auto& mag = cache.mags[cls];
  if (mag.count == 0) refill(cache, cls);
  void* block = mag.slots[--mag.count];

  auto* hdr = static_cast<BlockHeader*>(block);
  assert(hdr->canary == BlockHeader::kCanary);
  assert(hdr->classIdx == cls);
  hdr->owner = &cache;
  return static_cast<char*>(block) + kHeaderBytes;
}

void PoolAllocator::deallocate(void* ptr, std::size_t size) {
  if (size > kMaxPooledSize) {
    ::operator delete(ptr, size);
    return;
  }

  void* block = static_cast<char*>(ptr) - kHeaderBytes;
  auto* hdr = static_cast<BlockHeader*>(block);
  const std::size_t cls = hdr->classIdx;
  assert(hdr->canary == BlockHeader::kCanary &&
         "deallocate of a pointer the pool never handed out");
  assert(cls == classIndexFor(size + kHeaderBytes) &&
         "deallocate size does not match the allocation request");

  if (poison_.load(std::memory_order_relaxed)) {
    std::memset(ptr, kPoisonByte, kClassSizes[cls] - kHeaderBytes);
  }

  // Compare against the existing TLS cache WITHOUT materializing one: a
  // thread that only ever frees (the pure consumer in crossFree) should
  // not take the registry lock and own 17 empty magazines just to learn
  // the block is not its own.
  PoolThreadCache* mine = tlsCacheSlot.cache;
  if (hdr->owner == mine && mine != nullptr) {
    stashInMagazine(*mine, cls, block);
  } else {
    // Cross-thread free: hand the block back to its owner's remote
    // list.  One release-CAS, no shared lock — the crossFree path.
    pushRemote(hdr->owner, block);
  }
}

/// Park a block in the cache's magazine for `cls`, spilling a batch to
/// the depot first when full — the single spill policy shared by local
/// frees and remote drains.
void PoolAllocator::stashInMagazine(PoolThreadCache& cache, std::size_t cls,
                                    void* block) {
  auto& mag = cache.mags[cls];
  if (mag.count == kMagazineCapacity) {
    flushFromMagazine(cache.depotShard, cls, mag.slots, kFlushBatch);
    std::memmove(mag.slots, mag.slots + kFlushBatch,
                 (kMagazineCapacity - kFlushBatch) * sizeof(void*));
    mag.count = kMagazineCapacity - kFlushBatch;
  }
  mag.slots[mag.count++] = block;
}

void PoolAllocator::refill(PoolThreadCache& cache, std::size_t cls) {
  // Remote blocks first: they are already ours and draining them is a
  // single exchange.  Only when that leaves the magazine still empty do
  // we pay for the depot lock.
  drainRemote(cache);
  auto& mag = cache.mags[cls];
  if (mag.count != 0) return;

  Depot& depot = depots_[cache.depotShard][cls];
  std::lock_guard<SpinLock> guard(depot.lock);
  // Top up before taking so a refill always moves a full batch — chunk
  // carving guarantees at least kRefillBatch fresh blocks.  The carve
  // lands in this cache's shard, so the slab stays domain-local.
  if (depot.freeCount < kRefillBatch) carveChunk(cache.depotShard, cls);
  std::size_t take = kRefillBatch;
  for (; take > 0; --take) {
    void* block = depot.freeHead;
    depot.freeHead = readLink(block);
    --depot.freeCount;
    mag.slots[mag.count++] = block;
  }
}

void PoolAllocator::drainRemote(PoolThreadCache& cache) {
  void* head = cache.remoteHead.exchange(nullptr, std::memory_order_acquire);
  if (head == nullptr) return;

  std::size_t drained = 0;
  while (head != nullptr) {
    void* next = readLink(head);
    stashInMagazine(cache, static_cast<BlockHeader*>(head)->classIdx,
                    head);
    ++drained;
    head = next;
  }
  cache.remotePending.fetch_sub(drained, std::memory_order_relaxed);
}

void PoolAllocator::flushFromMagazine(std::size_t shard, std::size_t cls,
                                      void** blocks, std::size_t count) {
  Depot& depot = depots_[shard][cls];
  std::lock_guard<SpinLock> guard(depot.lock);
  for (std::size_t i = 0; i < count; ++i) {
    writeLink(blocks[i], depot.freeHead);
    depot.freeHead = blocks[i];
    ++depot.freeCount;
  }
}

void PoolAllocator::carveChunk(std::size_t shard, std::size_t cls) {
  // Failpoint: models chunk-reservation failure (the OOM drill).  Throw
  // mode is exception-safe HERE — the guards below unwind and nothing
  // is half-linked — but only spawn-path callers (allocateTask, closure
  // spill) translate the throw into a clean spawn failure.
  ATS_FAILPOINT(pool_carve);
  const std::size_t blockSize = kClassSizes[cls];
  std::size_t blocks = kChunkTargetBytes / blockSize;
  // Never carve less than a refill batch, so one carve always satisfies
  // one refill even for the largest classes.
  if (blocks < kRefillBatch) blocks = kRefillBatch;
  const std::size_t bytes = blocks * blockSize;

  // operator new returns max_align_t-aligned storage and the class
  // sizes are multiples of 16, so every carved block (and its +16 user
  // pointer) keeps the kAlignment guarantee.
  char* chunk = static_cast<char*>(::operator new(bytes));
  {
    std::lock_guard<SpinLock> guard(chunkLock_);
    chunks_.push_back(chunk);
  }
  reservedBytes_.fetch_add(bytes, std::memory_order_relaxed);

  Depot& depot = depots_[shard][cls];
  for (std::size_t i = 0; i < blocks; ++i) {
    void* block = chunk + i * blockSize;
    auto* hdr = static_cast<BlockHeader*>(block);
    hdr->owner = nullptr;
    hdr->classIdx = static_cast<std::uint32_t>(cls);
    hdr->canary = BlockHeader::kCanary;
    writeLink(block, depot.freeHead);
    depot.freeHead = block;
    ++depot.freeCount;
  }
}

void PoolAllocator::retireCache(PoolThreadCache* cache) {
  // Whatever the remote list holds right now can go home with the
  // magazines; anything pushed after the exchange waits for the next
  // thread that adopts this cache.
  drainRemote(*cache);
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    auto& mag = cache->mags[cls];
    if (mag.count != 0) {
      flushFromMagazine(cache->depotShard, cls, mag.slots, mag.count);
      mag.count = 0;
    }
  }
  std::lock_guard<SpinLock> guard(cacheLock_);
  cache->nextInactive = inactiveHead_;
  inactiveHead_ = cache;
}

std::size_t PoolAllocator::testLocalMagazineFill(std::size_t userSize) {
  if (userSize > kMaxPooledSize) return 0;
  return localCache().mags[classIndexFor(userSize + kHeaderBytes)].count;
}

std::size_t PoolAllocator::testDepotFree(std::size_t userSize) {
  if (userSize > kMaxPooledSize) return 0;
  const std::size_t cls = classIndexFor(userSize + kHeaderBytes);
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < kNumDepotShards; ++shard) {
    Depot& depot = depots_[shard][cls];
    std::lock_guard<SpinLock> guard(depot.lock);
    total += depot.freeCount;
  }
  return total;
}

std::size_t PoolAllocator::testDepotFreeOnShard(std::size_t userSize,
                                                std::size_t shard) {
  if (userSize > kMaxPooledSize || shard >= kNumDepotShards) return 0;
  Depot& depot = depots_[shard][classIndexFor(userSize + kHeaderBytes)];
  std::lock_guard<SpinLock> guard(depot.lock);
  return depot.freeCount;
}

std::size_t PoolAllocator::testRemotePendingOnCaller() {
  return localCache().remotePending.load(std::memory_order_relaxed);
}

std::size_t PoolAllocator::testCallerDepotShard() {
  return localCache().depotShard;
}

}  // namespace ats
