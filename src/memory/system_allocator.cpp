#include "memory/system_allocator.hpp"

namespace ats {

SystemAllocator& SystemAllocator::instance() {
  // Leaked like the pool singleton, so late-shutdown frees (thread-local
  // destructors, static teardown) always have somewhere to go.
  static SystemAllocator* inst = new SystemAllocator();
  return *inst;
}

}  // namespace ats
