#include "runtime/runtime_config.hpp"

namespace ats {

RuntimeConfig optimizedConfig(const Topology& topo) {
  RuntimeConfig config;
  config.topo = topo;
  config.scheduler = SchedulerKind::SyncDelegation;
  config.deps = DepsKind::WaitFreeAsm;
  config.usePoolAllocator = true;
  return config;
}

RuntimeConfig withoutJemallocConfig(const Topology& topo) {
  RuntimeConfig config = optimizedConfig(topo);
  config.usePoolAllocator = false;
  return config;
}

RuntimeConfig withoutWaitFreeDepsConfig(const Topology& topo) {
  RuntimeConfig config = optimizedConfig(topo);
  config.deps = DepsKind::FineGrainedLocks;
  return config;
}

RuntimeConfig withoutDTLockConfig(const Topology& topo) {
  RuntimeConfig config = optimizedConfig(topo);
  config.scheduler = SchedulerKind::PTLockCentral;
  return config;
}

RuntimeConfig centralMutexRuntimeConfig(const Topology& topo) {
  RuntimeConfig config;
  config.topo = topo;
  config.scheduler = SchedulerKind::CentralMutex;
  config.deps = DepsKind::FineGrainedLocks;
  config.usePoolAllocator = false;
  return config;
}

RuntimeConfig workStealingRuntimeConfig(const Topology& topo) {
  RuntimeConfig config = optimizedConfig(topo);
  config.scheduler = SchedulerKind::WorkStealing;
  return config;
}

RuntimeConfig makeXeonConfig(std::size_t numCpus) {
  return optimizedConfig(makeTopology(MachinePreset::Xeon, numCpus));
}

RuntimeConfig makeRomeConfig(std::size_t numCpus) {
  return optimizedConfig(makeTopology(MachinePreset::Rome, numCpus));
}

RuntimeConfig makeGravitonConfig(std::size_t numCpus) {
  return optimizedConfig(makeTopology(MachinePreset::Graviton, numCpus));
}

}  // namespace ats
