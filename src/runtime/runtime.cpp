#include "runtime/runtime.hpp"

#include <chrono>
#include <mutex>

#include "instr/tracer.hpp"
#include "memory/pool_allocator.hpp"
#include "memory/system_allocator.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ats {

namespace {

constexpr std::size_t kNoCpu = static_cast<std::size_t>(-1);

/// Worker threads stamp their slot here; any thread without a stamp is
/// treated as the spawner.  Thread-local (not per-Runtime) is fine: a
/// thread works for at most one runtime at a time, and worker threads die
/// with their runtime.
thread_local std::size_t tlsCpu = kNoCpu;

/// Pin a worker to its topology CPU.  Only attempted when the host
/// actually has a core per worker — pinning an oversubscribed runtime
/// (CI boxes) just fences threads onto one another.  Failure (cpuset
/// restrictions, non-Linux) is silently tolerated: affinity is a
/// performance hint, never a correctness requirement.
void pinWorker(std::size_t cpu, std::size_t numWorkers) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || hw < numWorkers) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
  (void)numWorkers;
#endif
}

}  // namespace

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  // Checked in release builds too (the submit/taskwait idiom): a tracer
  // whose CPU-stream count disagrees with the topology misroutes
  // emissions across the stream boundary — with fewer streams, worker
  // slots land on the spawner/KERNEL streams and a live noise injector
  // then shares a single-writer ring with a worker (a real data race);
  // with more, the spawner slot lands in a worker stream and skews the
  // starvation stats.  Tracer::emit only drop-counts out-of-range
  // streams, so nothing downstream would fail loudly.
  if (config_.tracer != nullptr &&
      config_.tracer->numCpuStreams() != config_.topo.numCpus) {
    std::fprintf(stderr,
                 "ats::Runtime: tracer has %zu CPU streams but the topology "
                 "has %zu CPUs — construct the Tracer with exactly "
                 "topo.numCpus streams\n",
                 config_.tracer->numCpuStreams(), config_.topo.numCpus);
    std::abort();
  }
  // §4: descriptors (and heap-spilled closures) come from the
  // configured allocator — the thread-caching pool for the optimized
  // runtime, plain operator new for the "w/o jemalloc" ablation.
  alloc_ = config_.usePoolAllocator
               ? static_cast<Allocator*>(&PoolAllocator::instance())
               : static_cast<Allocator*>(&SystemAllocator::instance());
  if (config_.usePoolAllocator) {
    // Bind the spawner's pool depot traffic to its slot's domain (the
    // reserved slot folds onto a real CPU's domain, like everywhere
    // else).  Workers bind their own in workerLoop.
    PoolAllocator::instance().setThreadDomain(
        config_.topo.domainOfSlot(config_.topo.numCpus));
  }

  // The scheduler gets one slot per worker plus the reserved spawner
  // slot, so every thread that touches it is a distinct SPSC producer
  // and DTLock delegator.  Reserved via Topology::reservedSlots, NOT by
  // inflating numCpus: the NUMA-aware policy derives its CPU->domain
  // map from numCpus, and a phantom extra "CPU" would shift
  // cpusPerDomain and misclassify real workers.
  spawnerCpu_ = config_.topo.numCpus;
  descriptorDelta_ =
      std::make_unique<DescriptorDelta[]>(config_.topo.numCpus + 1);
  RuntimeConfig schedConfig = config_;
  schedConfig.topo.reservedSlots = config_.topo.reservedSlots + 1;
  sched_ = makeScheduler(schedConfig);
  deps_ = makeDependencySystem(config_.deps, ReadySink{&readyThunk, this});

  workers_.reserve(config_.topo.numCpus);
  for (std::size_t cpu = 0; cpu < config_.topo.numCpus; ++cpu) {
    workers_.emplace_back([this, cpu] { workerLoop(cpu); });
  }
}

Runtime::~Runtime() {
  taskwait();
  stop_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) worker.join();
}

std::size_t Runtime::callerCpu() const {
  return tlsCpu == kNoCpu ? spawnerCpu_ : tlsCpu;
}

void Runtime::spawn(std::initializer_list<Access> accesses,
                    void (*fn)(void*), void* arg) {
  Task* task = allocateTask();
  task->body = fn;
  task->arg = arg;
  registerAndSubmit(task,
                    std::span<const Access>(accesses.begin(), accesses.size()));
}

Task* Runtime::allocateTask() {
  static_assert(alignof(Task) <= Allocator::kAlignment);
  // Default-init, NOT value-init: Task() would zero the whole
  // descriptor (1KB+ of access-node storage) before the member
  // initializers run; the registration path initializes every access
  // field it uses (see dep_task.hpp).
  Task* task = ::new (alloc_->allocate(sizeof(Task))) Task;
  task->runtime = this;
  // One execution reference, dropped after the completion path releases
  // the task's dependencies; the deps layer adds its own for every way
  // a chain can still reach the access nodes.  Whoever drops the last
  // one hands the descriptor straight back to the allocator.
  task->refCount.store(1, std::memory_order_relaxed);
  task->onLastRef = &reclaimThunk;
  bumpDescriptorDelta(+1);
  return task;
}

void Runtime::reclaimThunk(DepTask& dep) {
  Task& task = static_cast<Task&>(dep);
  Runtime* self = static_cast<Runtime*>(task.runtime);
  task.~Task();
  self->alloc_->deallocate(&task, sizeof(Task));
  self->bumpDescriptorDelta(-1);
}

void Runtime::registerAndSubmit(Task* task,
                                std::span<const Access> accesses) {
  // Checked in release builds too: overflowing the fixed access array
  // would silently corrupt the descriptor, and this layer's contract is
  // that misconfigured spawns fail loudly.
  if (accesses.size() > kMaxAccessesPerTask) {
    std::fprintf(stderr,
                 "ats::Runtime::spawn(): task declares %zu accesses, the "
                 "descriptor holds at most %zu\n",
                 accesses.size(), kMaxAccessesPerTask);
    std::abort();
  }
  task->runtime = this;
  task->onComplete = &completeThunk;
  // Count the task in before registering: the sink can hand it to a
  // worker that runs and completes it before registerTask even returns.
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  deps_->registerTask(task, accesses.data(), accesses.size(), callerCpu());
}

void Runtime::completeThunk(Task& task) {
  static_cast<Runtime*>(task.runtime)->complete(&task);
}

void Runtime::complete(Task* task) {
  if (task->closureDestroy != nullptr) {
    task->closureDestroy(*task);
    task->closureDestroy = nullptr;
    task->invoker = nullptr;
  }
  deps_->release(task, callerCpu());
  // Execution reference: from here the descriptor lives only as long as
  // dependency chains can still reach it — often this drop reclaims it
  // on the spot.  Must precede the inFlight_ decrement so a taskwait'er
  // observing zero knows every drop but the deps layer's own is done.
  task->dropRef();
  // Release order: the taskwait'er acquiring inFlight_ == 0 must see
  // every body's side effects.
  inFlight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Runtime::readyThunk(void* ctx, DepTask* task, std::size_t cpu) {
  Runtime* self = static_cast<Runtime*>(ctx);
  self->sched_->addReadyTask(static_cast<Task*>(task), cpu);
}

void Runtime::workerLoop(std::size_t cpu) {
  tlsCpu = cpu;
  pinWorker(cpu, config_.topo.numCpus);
  // Route this worker's pool refills/flushes to its own domain's depot
  // shard, so descriptor churn on different domains never meets on a
  // depot lock and carved slabs stay domain-local (§4, NUMA-sharded).
  if (config_.usePoolAllocator) {
    PoolAllocator::instance().setThreadDomain(
        config_.topo.domainOfSlot(cpu));
  }
  // §5 emissions are edge-triggered (idle streak begin/end, task
  // start/end), never per-poll, so a traced worker's event volume is
  // O(tasks) — and every site is null-guarded, so the untraced loop is
  // the PR-2 hot path unchanged.  Idle events carry a short hysteresis:
  // a single missed poll between back-to-back fine-grained tasks is
  // scheduling jitter, not starvation, and logging it would both drown
  // the analyzer's idle statistics in sub-microsecond blips and double
  // the traced run's event volume (the §5 overhead bound in
  // EXPERIMENTS.md is measured with this in place).
  constexpr std::size_t kIdleEmitStreak = 8;
  Tracer* const tracer = config_.tracer;
  SpinWait waiter;
  std::size_t idleStreak = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    Task* task = sched_->getReadyTask(cpu);
    if (task != nullptr) {
      if (tracer != nullptr) {
        if (idleStreak >= kIdleEmitStreak)
          tracer->emit(cpu, TraceEvent::WorkerIdleEnd);
        tracer->emit(cpu, TraceEvent::TaskStart,
                     reinterpret_cast<std::uintptr_t>(task));
      }
      waiter.reset();
      idleStreak = 0;
      task->run();
      // The descriptor may already be reclaimed; the payload is the
      // pointer VALUE (a correlation key for Start/End), never followed.
      if (tracer != nullptr)
        tracer->emit(cpu, TraceEvent::TaskEnd,
                     reinterpret_cast<std::uintptr_t>(task));
    } else {
      ++idleStreak;
      if (tracer != nullptr && idleStreak == kIdleEmitStreak)
        tracer->emit(cpu, TraceEvent::WorkerIdleBegin);
      waiter.spin();
      // Long-idle workers back off to a short sleep so oversubscribed
      // hosts (single-core CI) spend their timeslices on the threads
      // that still have work.
      if (idleStreak > 4096) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  if (tracer != nullptr && idleStreak >= kIdleEmitStreak)
    tracer->emit(cpu, TraceEvent::WorkerIdleEnd);
  tlsCpu = kNoCpu;
}

void Runtime::taskwait() {
  // Checked in release builds too: a task body calling taskwait would
  // wait on its own completion (guaranteed hang) while sharing the
  // reserved spawner slot with the real spawner — fail loudly instead.
  if (callerCpu() != spawnerCpu_) {
    std::fprintf(stderr,
                 "ats::Runtime::taskwait(): called from inside a task "
                 "(worker slot %zu) — a task waiting on itself can never "
                 "finish\n",
                 callerCpu());
    std::abort();
  }
  const std::size_t cpu = spawnerCpu_;
  // The spawner emits into its reserved stream (Tracer::spawnerStream).
  // The analyzer's per-thread stats cover WORKER streams only, so
  // spawner-helped tasks appear in the raw record listing (and the
  // collected TaskStart/End totals) but not in any ThreadTraceStats —
  // worker tasksExecuted summing below the spawn count is expected.
  Tracer* const tracer = config_.tracer;
  SpinWait waiter;
  while (inFlight_.load(std::memory_order_acquire) != 0) {
    Task* task = sched_->getReadyTask(cpu);
    if (task != nullptr) {
      if (tracer != nullptr)
        tracer->emit(cpu, TraceEvent::TaskStart,
                     reinterpret_cast<std::uintptr_t>(task));
      waiter.reset();
      task->run();
      if (tracer != nullptr)
        tracer->emit(cpu, TraceEvent::TaskEnd,
                     reinterpret_cast<std::uintptr_t>(task));
    } else {
      waiter.spin();
    }
  }
  quiesce();
}

void Runtime::quiesce() {
  // Forgetting the chains drops the deps layer's lastWrite references —
  // the only ones that can outlive their task's completion — so after
  // this, every descriptor is back in the allocator.
  deps_->reset();
  assert(liveDescriptors() == 0 && "descriptors leaked past quiescence");
}

}  // namespace ats
