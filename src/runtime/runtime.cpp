#include "runtime/runtime.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>

#include "common/fatal.hpp"
#include "instr/trace_writer.hpp"
#include "instr/tracer.hpp"
#include "memory/pool_allocator.hpp"
#include "memory/system_allocator.hpp"
#include "runtime/watchdog.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace ats {

namespace {

constexpr std::size_t kNoCpu = static_cast<std::size_t>(-1);

/// Worker threads stamp their slot here; any thread without a stamp is
/// treated as the spawner.  Thread-local (not per-Runtime) is fine: a
/// thread works for at most one runtime at a time, and worker threads die
/// with their runtime.
thread_local std::size_t tlsCpu = kNoCpu;

/// Depth of task bodies on this thread's stack — nonzero exactly while
/// executeTask is inside an invoker.  Lets taskwait reject the
/// spawner-helps case (a task body the SPAWNER is executing calls
/// taskwait: callerCpu() alone cannot tell it from the real spawner).
thread_local int tlsInTaskDepth = 0;

/// Pin a worker to its topology CPU.  Only attempted when the host
/// actually has a core per worker — pinning an oversubscribed runtime
/// (CI boxes) just fences threads onto one another.  Failure (cpuset
/// restrictions, non-Linux) is silently tolerated: affinity is a
/// performance hint, never a correctness requirement.
void pinWorker(std::size_t cpu, std::size_t numWorkers) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || hw < numWorkers) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
  (void)numWorkers;
#endif
}

/// Fatal hook: dump the runtime's tracer rings to a binary trace so a
/// crash leaves per-worker activity right up to the abort on disk.
/// Installed only while a traced Runtime is alive; collect() tolerates
/// concurrent emitters (it snapshots published prefixes), which is the
/// best any crash path can do.
void dumpTracerOnFatal(void* ctx) {
  const Runtime* runtime = static_cast<const Runtime*>(ctx);
  Tracer* tracer = runtime->config().tracer;
  if (tracer == nullptr) return;
  const char* dir = std::getenv("ATS_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') dir = ".";
  long pid = 0;
#if defined(__linux__)
  pid = static_cast<long>(::getpid());
#endif
  const std::string path =
      std::string(dir) + "/fatal-" + std::to_string(pid) + ".ats";
  const std::vector<TraceRecord> records = tracer->collect();
  if (TraceWriter::writeBinary(path, records)) {
    std::fprintf(stderr, "ats: fatal hook wrote %zu trace records to %s\n",
                 records.size(), path.c_str());
  } else {
    std::fprintf(stderr, "ats: fatal hook failed to write %s\n",
                 path.c_str());
  }
}

}  // namespace

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  // Checked in release builds too (the submit/taskwait idiom): a tracer
  // whose CPU-stream count disagrees with the topology misroutes
  // emissions across the stream boundary — with fewer streams, worker
  // slots land on the spawner/KERNEL streams and a live noise injector
  // then shares a single-writer ring with a worker (a real data race);
  // with more, the spawner slot lands in a worker stream and skews the
  // starvation stats.  Tracer::emit only drop-counts out-of-range
  // streams, so nothing downstream would fail loudly.
  if (config_.tracer != nullptr &&
      config_.tracer->numCpuStreams() != config_.topo.numCpus) {
    fatal("ats::Runtime: tracer has %zu CPU streams but the topology has "
          "%zu CPUs — construct the Tracer with exactly topo.numCpus "
          "streams",
          config_.tracer->numCpuStreams(), config_.topo.numCpus);
  }
  // From here any ats::fatal (watchdog stall, access overflow, nested
  // taskwait) flushes this runtime's tracer rings to ATS_TRACE_DIR
  // before aborting.  Last-installed-wins is fine: concurrent Runtimes
  // sharing a process are a test-only pattern, and the hook is cleared
  // in the destructor.
  if (config_.tracer != nullptr)
    installFatalHook(&dumpTracerOnFatal, this);
  spawnerThread_ = std::this_thread::get_id();
  // §4: descriptors (and heap-spilled closures) come from the
  // configured allocator — the thread-caching pool for the optimized
  // runtime, plain operator new for the "w/o jemalloc" ablation.
  alloc_ = config_.usePoolAllocator
               ? static_cast<Allocator*>(&PoolAllocator::instance())
               : static_cast<Allocator*>(&SystemAllocator::instance());
  if (config_.usePoolAllocator) {
    // Bind the spawner's pool depot traffic to its slot's domain (the
    // reserved slot folds onto a real CPU's domain, like everywhere
    // else).  Workers bind their own in workerLoop.
    PoolAllocator::instance().setThreadDomain(
        config_.topo.domainOfSlot(config_.topo.numCpus));
  }

  // The scheduler gets one slot per worker plus the reserved spawner
  // slot, so every thread that touches it is a distinct SPSC producer
  // and DTLock delegator.  Reserved via Topology::reservedSlots, NOT by
  // inflating numCpus: the NUMA-aware policy derives its CPU->domain
  // map from numCpus, and a phantom extra "CPU" would shift
  // cpusPerDomain and misclassify real workers.
  spawnerCpu_ = config_.topo.numCpus;
  descriptorDelta_ =
      std::make_unique<DescriptorDelta[]>(config_.topo.numCpus + 1);
  RuntimeConfig schedConfig = config_;
  schedConfig.topo.reservedSlots = config_.topo.reservedSlots + 1;
  sched_ = makeScheduler(schedConfig);
  deps_ = makeDependencySystem(config_.deps, ReadySink{&readyThunk, this});

  workers_.reserve(config_.topo.numCpus);
  for (std::size_t cpu = 0; cpu < config_.topo.numCpus; ++cpu) {
    workers_.emplace_back([this, cpu] { workerLoop(cpu); });
  }

  if (config_.watchdogTimeoutMs > 0) {
    Watchdog::Options options;
    options.timeout = std::chrono::milliseconds(config_.watchdogTimeoutMs);
    options.progress = [this] {
      return retired_.load(std::memory_order_relaxed);
    };
    options.busy = [this] {
      return inFlight_.load(std::memory_order_relaxed) != 0;
    };
    options.report = [this] { return watchdogReport(); };
    if (config_.watchdogOnStall != nullptr) {
      options.onStall = [fn = config_.watchdogOnStall,
                         ctx = config_.watchdogOnStallCtx](
                            const std::string& report) {
        fn(ctx, report.c_str());
      };
    }
    watchdog_ = std::make_unique<Watchdog>(std::move(options));
  }
}

Runtime::~Runtime() {
  // Monitor first: its progress/busy/report callbacks read members this
  // destructor is about to tear down, so it must be gone before any of
  // them are.
  watchdog_.reset();
  taskwait();
  stop_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) worker.join();
  if (config_.tracer != nullptr) installFatalHook(nullptr, nullptr);
}

std::size_t Runtime::callerCpu() const {
  return tlsCpu == kNoCpu ? spawnerCpu_ : tlsCpu;
}

void Runtime::spawn(std::initializer_list<Access> accesses,
                    void (*fn)(void*), void* arg) {
  Task* task = allocateTask();
  task->body = fn;
  task->arg = arg;
  registerAndSubmit(task,
                    std::span<const Access>(accesses.begin(), accesses.size()));
}

Task* Runtime::allocateTask() {
  static_assert(alignof(Task) <= Allocator::kAlignment);
  // Default-init, NOT value-init: Task() would zero the whole
  // descriptor (1KB+ of access-node storage) before the member
  // initializers run; the registration path initializes every access
  // field it uses (see dep_task.hpp).
  Task* task = ::new (alloc_->allocate(sizeof(Task))) Task;
  task->runtime = this;
  // One execution reference, dropped after the completion path releases
  // the task's dependencies; the deps layer adds its own for every way
  // a chain can still reach the access nodes.  Whoever drops the last
  // one hands the descriptor straight back to the allocator.
  task->refCount.store(1, std::memory_order_relaxed);
  task->onLastRef = &reclaimThunk;
  bumpDescriptorDelta(+1);
  return task;
}

void Runtime::reclaimThunk(DepTask& dep) {
  Task& task = static_cast<Task&>(dep);
  Runtime* self = static_cast<Runtime*>(task.runtime);
  task.~Task();
  self->alloc_->deallocate(&task, sizeof(Task));
  self->bumpDescriptorDelta(-1);
}

void Runtime::registerAndSubmit(Task* task,
                                std::span<const Access> accesses) {
  // Checked in release builds too: overflowing the fixed access array
  // would silently corrupt the descriptor, and this layer's contract is
  // that misconfigured spawns fail loudly.
  if (accesses.size() > kMaxAccessesPerTask) {
    fatal("ats::Runtime::spawn(): task declares %zu accesses, the "
          "descriptor holds at most %zu",
          accesses.size(), kMaxAccessesPerTask);
  }
  task->runtime = this;
  task->onComplete = &completeThunk;
  // Count the task in before registering: the sink can hand it to a
  // worker that runs and completes it before registerTask even returns.
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  try {
    deps_->registerTask(task, accesses.data(), accesses.size(), callerCpu());
  } catch (...) {
    // Only the deps_register* failpoints can throw here, and they sit
    // BEFORE the deps layer mutates anything — so the descriptor is
    // still wholly ours: undo the in-flight accounting, destroy the
    // closure, and reclaim it so conservation holds for the caller.
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
    if (task->closureDestroy != nullptr) {
      task->closureDestroy(*task);
      task->closureDestroy = nullptr;
      task->invoker = nullptr;
    }
    task->dropRef();
    throw;
  }
}

void Runtime::completeThunk(Task& task) {
  static_cast<Runtime*>(task.runtime)->complete(&task);
}

void Runtime::complete(Task* task) {
  if (task->closureDestroy != nullptr) {
    task->closureDestroy(*task);
    task->closureDestroy = nullptr;
    task->invoker = nullptr;
  }
  deps_->release(task, callerCpu());
  // Execution reference: from here the descriptor lives only as long as
  // dependency chains can still reach it — often this drop reclaims it
  // on the spot.  Must precede the inFlight_ decrement so a taskwait'er
  // observing zero knows every drop but the deps layer's own is done.
  task->dropRef();
  // The watchdog's progress probe: bumps on EVERY retirement — run,
  // failed, or skipped — so a cancelling graph draining is visibly
  // making progress, not stalling.
  retired_.fetch_add(1, std::memory_order_relaxed);
  // Release order: the taskwait'er acquiring inFlight_ == 0 must see
  // every body's side effects.
  inFlight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Runtime::readyThunk(void* ctx, DepTask* task, std::size_t cpu) {
  Runtime* self = static_cast<Runtime*>(ctx);
  self->sched_->addReadyTask(static_cast<Task*>(task), cpu);
}

void Runtime::executeTask(Task* task, std::size_t cpu) {
  Tracer* const tracer = config_.tracer;
  if (graph_.cancelled()) [[unlikely]] {
    // Skip path: the body never runs, but complete() still destroys the
    // closure, releases the dependencies (readying successors, which
    // will observe the token themselves) and drops the execution
    // reference — the graph DRAINS under cancellation, it is never
    // abandoned with descriptors in flight.
    graph_.noteSkip();
    if (tracer != nullptr)
      tracer->emit(cpu, TraceEvent::TaskSkipped,
                   reinterpret_cast<std::uintptr_t>(task));
    complete(task);
    return;
  }
  if (tracer != nullptr)
    tracer->emit(cpu, TraceEvent::TaskStart,
                 reinterpret_cast<std::uintptr_t>(task));
  std::exception_ptr error;
  std::uint64_t failPayload = 0;
  ++tlsInTaskDepth;
  try {
    ATS_FAILPOINT(task_invoke);
    if (task->invoker != nullptr) {
      task->invoker(*task);
    } else if (task->body != nullptr) {
      task->body(task->arg);
    } else {
      fatal("ats::Runtime: task %p has neither a closure nor a raw body — "
            "misconfigured spawn path",
            static_cast<void*>(task));
    }
  } catch (const FailpointError& caught) {
    failPayload = caught.id();
    error = std::current_exception();
  } catch (...) {
    error = std::current_exception();
  }
  --tlsInTaskDepth;
  if (error) [[unlikely]] {
    // Poison BEFORE complete(): complete() is what releases successors,
    // and the scheduler's release/acquire hand-off is what lets a
    // successor's skip check observe the token (graph_status.hpp,
    // ordering note).  TaskFailed closes the busy interval TaskStart
    // opened; its payload names the firing failpoint (0 = an organic
    // exception from the body).
    if (graph_.poison(std::move(error)) && tracer != nullptr)
      tracer->emit(cpu, TraceEvent::GraphCancelled, 0);
    if (tracer != nullptr)
      tracer->emit(cpu, TraceEvent::TaskFailed, failPayload);
  } else if (tracer != nullptr) {
    // The descriptor may already be reclaimed; the payload is the
    // pointer VALUE (a correlation key for Start/End), never followed.
    tracer->emit(cpu, TraceEvent::TaskEnd,
                 reinterpret_cast<std::uintptr_t>(task));
  }
  complete(task);
}

void Runtime::workerLoop(std::size_t cpu) {
  tlsCpu = cpu;
  pinWorker(cpu, config_.topo.numCpus);
  // Route this worker's pool refills/flushes to its own domain's depot
  // shard, so descriptor churn on different domains never meets on a
  // depot lock and carved slabs stay domain-local (§4, NUMA-sharded).
  if (config_.usePoolAllocator) {
    PoolAllocator::instance().setThreadDomain(
        config_.topo.domainOfSlot(cpu));
  }
  // §5 emissions are edge-triggered (idle streak begin/end, task
  // start/end), never per-poll, so a traced worker's event volume is
  // O(tasks) — and every site is null-guarded, so the untraced loop is
  // the PR-2 hot path unchanged.  Idle events carry a short hysteresis:
  // a single missed poll between back-to-back fine-grained tasks is
  // scheduling jitter, not starvation, and logging it would both drown
  // the analyzer's idle statistics in sub-microsecond blips and double
  // the traced run's event volume (the §5 overhead bound in
  // EXPERIMENTS.md is measured with this in place).
  constexpr std::size_t kIdleEmitStreak = 8;
  Tracer* const tracer = config_.tracer;
  SpinWait waiter;
  std::size_t idleStreak = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    Task* task = sched_->getReadyTask(cpu);
    if (task != nullptr) {
      if (tracer != nullptr && idleStreak >= kIdleEmitStreak)
        tracer->emit(cpu, TraceEvent::WorkerIdleEnd);
      waiter.reset();
      idleStreak = 0;
      executeTask(task, cpu);
    } else {
      ++idleStreak;
      if (tracer != nullptr && idleStreak == kIdleEmitStreak)
        tracer->emit(cpu, TraceEvent::WorkerIdleBegin);
      waiter.spin();
      // Long-idle workers back off to a short sleep so oversubscribed
      // hosts (single-core CI) spend their timeslices on the threads
      // that still have work.
      if (idleStreak > 4096) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  if (tracer != nullptr && idleStreak >= kIdleEmitStreak)
    tracer->emit(cpu, TraceEvent::WorkerIdleEnd);
  tlsCpu = kNoCpu;
}

void Runtime::drainAndHelp() {
  // Checked in release builds too: a task body calling taskwait would
  // wait on its own completion (guaranteed hang).  Two shapes of the
  // same bug: a WORKER-run body (callerCpu() is a worker slot), and a
  // body the spawner itself is helping with during an outer taskwait
  // (same thread, so only the task-depth counter can tell).  Nested
  // taskwait / taskwait-in-task is the open ROADMAP item under
  // "Production service mode"; until that lands, fail loudly.
  if (callerCpu() != spawnerCpu_ || tlsInTaskDepth > 0) {
    fatal("ats::Runtime::taskwait(): called from inside a task (slot %zu, "
          "task depth %d) — a task waiting on its own completion can "
          "never finish; nested taskwait is an open ROADMAP item "
          "(\"Production service mode\")",
          callerCpu(), tlsInTaskDepth);
  }
  const std::size_t cpu = spawnerCpu_;
  // The spawner emits into its reserved stream (Tracer::spawnerStream).
  // The analyzer's per-thread stats cover WORKER streams only, so
  // spawner-helped tasks appear in the raw record listing (and the
  // collected TaskStart/End totals) but not in any ThreadTraceStats —
  // worker tasksExecuted summing below the spawn count is expected.
  SpinWait waiter;
  while (inFlight_.load(std::memory_order_acquire) != 0) {
    Task* task = sched_->getReadyTask(cpu);
    if (task != nullptr) {
      waiter.reset();
      executeTask(task, cpu);
    } else {
      waiter.spin();
    }
  }
  quiesce();
}

void Runtime::taskwait() {
  drainAndHelp();
  // This variant DISCARDS any captured failure (documented on the
  // declaration): legacy callers and the destructor get drain-and-reset
  // semantics; taskwaitChecked() is the observing variant.
  graph_.reset();
}

void Runtime::taskwaitChecked() {
  drainAndHelp();
  // Quiescence first (drainAndHelp returned, so no poison() is in
  // flight), THEN surface the first captured error.  Descriptors are
  // already reclaimed and chains reset — conservation holds before the
  // throw reaches the caller.
  std::exception_ptr error = graph_.takeFirstError();
  graph_.reset();
  if (error) std::rethrow_exception(std::move(error));
}

void Runtime::cancel() {
  // First flip wins the trace event; payload 1 = caller-initiated (0 is
  // the task-failure poisoning in executeTask).
  if (graph_.cancel() && config_.tracer != nullptr)
    config_.tracer->emit(callerCpu(), TraceEvent::GraphCancelled, 1);
}

void Runtime::quiesce() {
  // Forgetting the chains drops the deps layer's lastWrite references —
  // the only ones that can outlive their task's completion — so after
  // this, every descriptor is back in the allocator.
  deps_->reset();
  assert(liveDescriptors() == 0 && "descriptors leaked past quiescence");
}

std::string Runtime::watchdogReport() const {
  // Plain snprintf assembly: this runs on the watchdog thread while the
  // runtime may be wedged, so it must not allocate through the pool or
  // touch any lock a stuck worker might hold.
  char line[256];
  std::string out = "ats watchdog report:\n";
  std::snprintf(line, sizeof(line),
                "  scheduler=%s deps=%s workers=%zu\n",
                schedulerKindName(config_.scheduler), deps_->name(),
                config_.topo.numCpus);
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  inFlight=%zu retired=%llu failed=%llu skipped=%llu cancelled=%d "
      "liveDescriptors=%zu\n",
      inFlight_.load(std::memory_order_relaxed),
      static_cast<unsigned long long>(
          retired_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(graph_.tasksFailed()),
      static_cast<unsigned long long>(graph_.tasksSkipped()),
      graph_.cancelled() ? 1 : 0, liveDescriptors());
  out += line;
  out += "  per-slot descriptor deltas:";
  for (std::size_t i = 0; i <= config_.topo.numCpus; ++i) {
    std::snprintf(line, sizeof(line), " %lld",
                  static_cast<long long>(
                      descriptorDelta_[i].v.load(std::memory_order_relaxed)));
    out += line;
  }
  out += "\n";
  return out;
}

}  // namespace ats
