#include "runtime/watchdog.hpp"

#include <algorithm>
#include <cstdio>

#include "common/fatal.hpp"

namespace ats {

Watchdog::Watchdog(Options options) : options_(std::move(options)) {
  monitor_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    stop_ = true;
  }
  wake_.notify_all();
  monitor_.join();
}

void Watchdog::loop() {
  using Clock = std::chrono::steady_clock;
  // Poll at a quarter of the timeout so detection lands within
  // [timeout, timeout + poll] of the last retirement, clamped so a
  // tiny test timeout does not busy-poll and a huge production one
  // still notices destruction promptly.
  const auto poll = std::clamp(options_.timeout / 4,
                               std::chrono::milliseconds(10),
                               std::chrono::milliseconds(1000));
  std::uint64_t lastProgress = options_.progress();
  Clock::time_point lastChange = Clock::now();
  bool firedThisEpisode = false;
  std::unique_lock<std::mutex> guard(lock_);
  while (!stop_) {
    wake_.wait_for(guard, poll, [this] { return stop_; });
    if (stop_) break;
    const std::uint64_t progress = options_.progress();
    const Clock::time_point now = Clock::now();
    if (progress != lastProgress) {
      lastProgress = progress;
      lastChange = now;
      firedThisEpisode = false;  // progress resumed: re-arm
      continue;
    }
    if (!options_.busy()) {
      // Idle quiescence is not a stall: restart the clock so the next
      // batch gets a full timeout from its first dequeue.
      lastChange = now;
      firedThisEpisode = false;
      continue;
    }
    // A stall already reported stays reported until progress resumes
    // (one report per episode, not one per poll).
    if (firedThisEpisode) continue;
    if (now - lastChange < options_.timeout) continue;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    firedThisEpisode = true;
    const std::string report =
        options_.report ? options_.report() : std::string();
    if (options_.onStall) {
      // Custom handler (tests, embedders): report and keep monitoring.
      options_.onStall(report);
    } else {
      std::fprintf(stderr, "%s", report.c_str());
      fatal("watchdog: no completion progress for %lld ms with work in "
            "flight — dumping state and aborting (see report above; the "
            "fatal hook flushes the attached tracer to ATS_TRACE_DIR)",
            static_cast<long long>(options_.timeout.count()));
    }
  }
}

}  // namespace ats
