#include "runtime/scheduler_factory.hpp"

#include "common/fatal.hpp"
#include "sched/central_mutex_scheduler.hpp"
#include "sched/policies.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"
#include "sched/work_stealing_scheduler.hpp"

namespace ats {

std::unique_ptr<Scheduler> makeScheduler(const RuntimeConfig& config) {
  // The three serialized designs run the same configured policy object,
  // so policy sweeps compare policies, not scheduler substrates.
  // WorkStealing has no serialization point to plug a policy into and
  // ignores config.policy (see WorkStealingScheduler's header).
  switch (config.scheduler) {
    case SchedulerKind::CentralMutex:
      return std::make_unique<CentralMutexScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          config.tracer);
    case SchedulerKind::PTLockCentral:
      return std::make_unique<PTLockScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          config.spscCapacity, config.tracer);
    case SchedulerKind::SyncDelegation:
      return std::make_unique<SyncScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          SyncScheduler::Options{.spscCapacity = config.spscCapacity,
                                 .batchServe = config.schedBatchServe,
                                 .serveBurst = config.serveBurst,
                                 .waiterLocality =
                                     config.schedWaiterLocality},
          config.tracer);
    case SchedulerKind::WorkStealing:
      return std::make_unique<WorkStealingScheduler>(
          config.topo,
          WorkStealingScheduler::Options{config.spscCapacity,
                                         config.stealProbeLimit},
          config.tracer);
  }
  // A value outside the enum can only come from memory corruption or a
  // missed case after adding a kind.  Until PR 6 this path silently
  // returned nullptr, deferring the failure to a null deref inside the
  // Runtime; fail loudly at the source instead (ats::fatal also gives
  // any attached tracer its last flush through the fatal hook).
  fatal("makeScheduler: unknown SchedulerKind %d",
        static_cast<int>(config.scheduler));
}

}  // namespace ats
