#include "runtime/scheduler_factory.hpp"

#include "sched/central_mutex_scheduler.hpp"
#include "sched/policies.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"

namespace ats {

std::unique_ptr<Scheduler> makeScheduler(const RuntimeConfig& config) {
  // Every design runs the same configured policy object, so policy
  // sweeps compare policies, not scheduler substrates.
  switch (config.scheduler) {
    case SchedulerKind::CentralMutex:
      return std::make_unique<CentralMutexScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          config.tracer);
    case SchedulerKind::PTLockCentral:
      return std::make_unique<PTLockScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          config.spscCapacity, config.tracer);
    case SchedulerKind::SyncDelegation:
    case SchedulerKind::WorkStealing:
      return std::make_unique<SyncScheduler>(
          config.topo, makePolicy(config.policy, config.topo),
          SyncScheduler::Options{config.spscCapacity, config.schedBatchServe,
                                 config.serveBurst},
          config.tracer);
  }
  return nullptr;
}

}  // namespace ats
