#include "runtime/scheduler_factory.hpp"

#include "sched/central_mutex_scheduler.hpp"
#include "sched/ptlock_scheduler.hpp"
#include "sched/sync_scheduler.hpp"

namespace ats {

std::unique_ptr<Scheduler> makeScheduler(const RuntimeConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::CentralMutex:
      return std::make_unique<CentralMutexScheduler>(
          config.topo, std::make_unique<FifoScheduler>(), config.tracer);
    case SchedulerKind::PTLockCentral:
      return std::make_unique<PTLockScheduler>(
          config.topo, std::make_unique<FifoScheduler>(),
          config.addBufferCapacity, config.tracer);
    case SchedulerKind::SyncDelegation:
    case SchedulerKind::WorkStealing:
      return std::make_unique<SyncScheduler>(
          config.topo, std::make_unique<FifoScheduler>(),
          config.addBufferCapacity, config.tracer);
  }
  return nullptr;
}

}  // namespace ats
