#include "sched/sync_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "instr/tracer.hpp"

namespace ats {

SyncScheduler::SyncScheduler(Topology topo,
                             std::unique_ptr<SchedulerPolicy> policy,
                             Options options, Tracer* tracer)
    : Scheduler(tracer),
      topo_(std::move(topo)),
      lock_(std::max<std::size_t>(64, topo_.slotCount() * 2),
            std::max<std::size_t>(64, topo_.slotCount())),
      policy_(std::move(policy)),
      addBuffers_(topo_.slotCount(), options.spscCapacity),
      batchServe_(options.batchServe),
      serveBurst_(std::clamp<std::size_t>(options.serveBurst, 1,
                                          kMaxServeBurst)) {}

void SyncScheduler::addReadyTask(Task* task, std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  if (addBuffers_.tryPush(task, cpu)) return;

  // Overflow protocol: join the FIFO queue and become the server for a
  // moment — drain everything, then answer queued getReadyTask
  // delegations.  Unlike the PTLock scheduler, queueing a ticket here is
  // safe AND useful: getters that pile up behind a queued adder land in
  // the delegation queue and are retired in one combined burst when the
  // adder enters, instead of each needing its own lock hand-off.
  lock_.lock();
  emitDrain(cpu, addBuffers_.drainInto(*policy_));
  policy_->addTask(task, cpu);
  serveWaiters(cpu);
  lock_.unlock();
}

Task* SyncScheduler::getReadyTask(std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  std::uintptr_t item = 0;
  if (!lock_.lockOrDelegate(cpu, item)) {
    return reinterpret_cast<Task*>(item);  // served by the lock holder
  }
  emitDrain(cpu, addBuffers_.drainInto(*policy_));
  Task* task = policy_->getTask(cpu);
  serveWaiters(cpu);
  lock_.unlock();
  return task;
}

void SyncScheduler::serveWaiters(std::size_t cpu) {
  // Each thread has at most one outstanding request, but a served waiter
  // can requeue while we still hold the lock; cap the combining burst so
  // the holder's own latency stays bounded.
  const std::size_t maxServes = 4 * topo_.numCpus + 4;
  if (batchServe_) {
    serveWaitersBatched(cpu, maxServes);
  } else {
    serveWaitersOneByOne(cpu, maxServes);
  }
}

void SyncScheduler::serveWaitersBatched(std::size_t cpu,
                                        std::size_t maxServes) {
  std::uint64_t waiterCpus[kMaxServeBurst];
  Task* tasks[kMaxServeBurst];
  std::uintptr_t items[kMaxServeBurst];
  bool refilled = false;
  std::size_t served = 0;
  while (served < maxServes) {
    const std::size_t want =
        std::min(serveBurst_, maxServes - served);
    const std::size_t n = lock_.popWaiters(waiterCpus, want);
    if (n == 0) break;
    // One bulk policy pull for the whole batch.  The pull is made from
    // the HOLDER's locality view — a flat-combining trade-off a
    // NUMA-aware policy feels (served waiters may receive holder-local
    // tasks); serve-one keeps per-waiter affinity (see DESIGN.md).
    std::size_t got = policy_->getTasks(tasks, n, cpu);
    if (got < n && !refilled) {
      // Refill before answering "nothing ready" — but at most once per
      // combining burst: an idle spin of delegating waiters must not
      // turn the holder into a drain loop.
      refilled = true;
      emitDrain(cpu, addBuffers_.drainInto(*policy_));
      got += policy_->getTasks(tasks + got, n - got, cpu);
    }
    for (std::size_t i = 0; i < n; ++i) {
      items[i] =
          reinterpret_cast<std::uintptr_t>(i < got ? tasks[i] : nullptr);
    }
    lock_.serveBatch(waiterCpus, items, n);
    // One coalesced SchedServe per batch, hand-off count as payload —
    // and only when something was actually handed off (idle waiters
    // re-delegate continuously; see the Scheduler contract).
    if (tracer_ != nullptr && got != 0)
      tracer_->emit(cpu, TraceEvent::SchedServe, got);
    served += n;
    if (got < n) break;  // policy dry even after the one refill
  }
}

void SyncScheduler::serveWaitersOneByOne(std::size_t cpu,
                                         std::size_t maxServes) {
  bool refilled = false;
  std::uint64_t waiterCpu = 0;
  for (std::size_t n = 0; n < maxServes && lock_.popWaiter(waiterCpu); ++n) {
    Task* task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    if (task == nullptr && !refilled) {
      // Refill before answering "nothing ready" — once per burst, same
      // rationale as the batched path.
      refilled = true;
      emitDrain(cpu, addBuffers_.drainInto(*policy_));
      task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    }
    // Only actual hand-offs are trace-worthy: idle waiters re-delegate
    // continuously, and logging every empty answer would saturate the
    // holder's ring with "nothing happened" (see the Scheduler contract).
    if (tracer_ != nullptr && task != nullptr)
      tracer_->emit(cpu, TraceEvent::SchedServe, 1);
    lock_.serve(reinterpret_cast<std::uintptr_t>(task));
  }
}

}  // namespace ats
