#include "sched/sync_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "common/failpoint.hpp"
#include "instr/tracer.hpp"

namespace ats {

SyncScheduler::SyncScheduler(Topology topo,
                             std::unique_ptr<SchedulerPolicy> policy,
                             Options options, Tracer* tracer)
    : Scheduler(tracer),
      topo_(std::move(topo)),
      lock_(std::max<std::size_t>(64, topo_.slotCount() * 2),
            std::max<std::size_t>(64, topo_.slotCount())),
      policy_(std::move(policy)),
      addBuffers_(topo_, options.spscCapacity),
      batchServe_(options.batchServe),
      serveBurst_(std::clamp<std::size_t>(options.serveBurst, 1,
                                          kMaxServeBurst)),
      waiterLocality_(options.waiterLocality) {}

void SyncScheduler::addReadyTask(Task* task, std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  if (addBuffers_.tryPush(task, cpu)) return;

  // Overflow protocol: join the FIFO queue and become the server for a
  // moment — drain, then answer queued getReadyTask delegations.  Unlike
  // the PTLock scheduler, queueing a ticket here is safe AND useful:
  // getters that pile up behind a queued adder land in the delegation
  // queue and are retired in one combined burst when the adder enters,
  // instead of each needing its own lock hand-off.
  // Failpoint: delay/abort drills only — no lock is held yet, but a
  // throw here would lose the task (see DESIGN.md "Failure domains").
  ATS_FAILPOINT(addbuf_overflow);
  lock_.lock();
  if (waiterLocality_) {
    // The full ring is ours, and so is its whole domain shard: draining
    // it (unbounded) empties our ring without pulling every other
    // domain's cache lines through this core.  Other domains' adds keep
    // riding their rings until a getter goes dry and runs the flat
    // fallback below.
    emitDrain(cpu, addBuffers_.drainDomain(*policy_, topo_.domainOfSlot(cpu)));
  } else {
    emitDrain(cpu, addBuffers_.drainInto(*policy_));
  }
  policy_->addTask(task, cpu);
  serveWaiters(cpu);
  lock_.unlock();
}

Task* SyncScheduler::getReadyTask(std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  std::uintptr_t item = 0;
  if (!lock_.lockOrDelegate(cpu, item)) {
    return reinterpret_cast<Task*>(item);  // served by the lock holder
  }
  Task* task = nullptr;
  if (waiterLocality_) {
    // Own-domain shard first, bounded: the holder is its own first
    // waiter, and a NUMA-aware policy will hand back what this drain
    // just filed locally.  Only when the policy is dry after that does
    // the flat pass run — the guarantee that a domain with producers but
    // no getters still drains.
    emitDrain(cpu, addBuffers_.drainDomain(*policy_, topo_.domainOfSlot(cpu),
                                           serveBurst_));
    task = policy_->getTask(cpu);
    if (task == nullptr) {
      emitDrain(cpu, addBuffers_.drainInto(*policy_));
      task = policy_->getTask(cpu);
    }
  } else {
    emitDrain(cpu, addBuffers_.drainInto(*policy_));
    task = policy_->getTask(cpu);
  }
  serveWaiters(cpu);
  lock_.unlock();
  return task;
}

void SyncScheduler::serveWaiters(std::size_t cpu) {
  // Each thread has at most one outstanding request, but a served waiter
  // can requeue while we still hold the lock; cap the combining burst so
  // the holder's own latency stays bounded.
  const std::size_t maxServes = 4 * topo_.numCpus + 4;
  if (batchServe_) {
    serveWaitersBatched(cpu, maxServes);
  } else {
    serveWaitersOneByOne(cpu, maxServes);
  }
}

void SyncScheduler::serveWaitersBatched(std::size_t cpu,
                                        std::size_t maxServes) {
  // Failpoint: stretches the combining holder's lock hold (delay mode),
  // the latency-injection drill for delegation fairness.  DTLock held —
  // throw mode is off-limits here.
  ATS_FAILPOINT(serve_batch);
  std::uint64_t waiterCpus[kMaxServeBurst];
  Task* tasks[kMaxServeBurst];
  std::uintptr_t items[kMaxServeBurst];
  const std::size_t holderDomain = topo_.domainOfSlot(cpu);
  bool refilled = false;
  std::size_t served = 0;
  while (served < maxServes) {
    const std::size_t want =
        std::min(serveBurst_, maxServes - served);
    const std::size_t n = lock_.popWaiters(waiterCpus, want);
    if (n == 0) break;
    std::uint64_t localGot = 0;
    std::uint64_t remoteGot = 0;
    std::size_t totalGot = 0;
    if (!waiterLocality_) {
      // Holder-locality pull (the PR-5 behavior, kept as micro_numa's
      // ablation baseline): one bulk policy pull for the whole batch,
      // made from the HOLDER's locality view, with at most one flat
      // refill per combining burst.
      std::size_t got = policy_->getTasks(tasks, n, cpu);
      if (got < n && !refilled) {
        refilled = true;
        emitDrain(cpu, addBuffers_.drainInto(*policy_));
        got += policy_->getTasks(tasks + got, n - got, cpu);
      }
      for (std::size_t i = 0; i < n; ++i) {
        items[i] =
            reinterpret_cast<std::uintptr_t>(i < got ? tasks[i] : nullptr);
      }
      for (std::size_t i = 0; i < got; ++i) {
        const std::size_t waiterDomain =
            topo_.domainOfSlot(static_cast<std::size_t>(waiterCpus[i]));
        if (waiterDomain == holderDomain) ++localGot; else ++remoteGot;
      }
      totalGot = got;
    } else {
      // Waiter-locality: group the popped batch by NUMA domain and make
      // one bulk pull per group from the GROUP's own view, so a
      // NUMA-aware policy hands each waiter its own domain's tasks.
      // Answers are assembled into `items` in pop order and still
      // published behind ONE release fence (the single serveBatch
      // below) — the grouping only changes which pull fills which slot,
      // not the §8 publication protocol.
      std::uint8_t waiterDomain[kMaxServeBurst];
      bool grouped[kMaxServeBurst] = {};
      std::size_t groupIdx[kMaxServeBurst];
      for (std::size_t i = 0; i < n; ++i) {
        items[i] = 0;
        waiterDomain[i] = static_cast<std::uint8_t>(
            topo_.domainOfSlot(static_cast<std::size_t>(waiterCpus[i])));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (grouped[i]) continue;
        const std::uint8_t domain = waiterDomain[i];
        std::size_t m = 0;
        for (std::size_t j = i; j < n; ++j) {
          if (!grouped[j] && waiterDomain[j] == domain) {
            grouped[j] = true;
            groupIdx[m++] = j;
          }
        }
        const std::size_t waiterView =
            static_cast<std::size_t>(waiterCpus[i]);
        std::size_t got = policy_->getTasks(tasks, m, waiterView);
        if (got < m) {
          // Short for this group: drain the WAITERS' domain's shard
          // (bounded, so one group cannot turn the hold into a drain
          // loop) and retry before touching any other domain.
          emitDrain(cpu, addBuffers_.drainDomain(*policy_, domain,
                                                 serveBurst_));
          got += policy_->getTasks(tasks + got, m - got, waiterView);
        }
        for (std::size_t k = 0; k < got; ++k) {
          items[groupIdx[k]] = reinterpret_cast<std::uintptr_t>(tasks[k]);
        }
        localGot += got;  // pulled with the waiters' own locality view
        totalGot += got;
      }
      if (totalGot < n && !refilled) {
        // Some waiters still have no answer and their domains' shards
        // are dry: one flat refill per burst (the same once-per-burst
        // rule as ever), then one holder-view pull for the leftovers.
        // These are the potentially cross-domain hand-offs the trace
        // payload records.
        refilled = true;
        emitDrain(cpu, addBuffers_.drainInto(*policy_));
        std::size_t unfilled[kMaxServeBurst];
        std::size_t m = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (items[i] == 0) unfilled[m++] = i;
        }
        const std::size_t got = policy_->getTasks(tasks, m, cpu);
        for (std::size_t k = 0; k < got; ++k) {
          const std::size_t i = unfilled[k];
          items[i] = reinterpret_cast<std::uintptr_t>(tasks[k]);
          if (waiterDomain[i] == static_cast<std::uint8_t>(holderDomain)) {
            ++localGot;
          } else {
            ++remoteGot;
          }
        }
        totalGot += got;
      }
    }
    lock_.serveBatch(waiterCpus, items, n);
    // One coalesced SchedServe per batch, the local/remote hand-off
    // split packed as payload — and only when something was actually
    // handed off (idle waiters re-delegate continuously; see the
    // Scheduler contract).
    if (tracer_ != nullptr && totalGot != 0)
      tracer_->emit(cpu, TraceEvent::SchedServe,
                    packServePayload(localGot, remoteGot));
    served += n;
    if (totalGot < n) break;  // policy dry even after the one refill
  }
}

void SyncScheduler::serveWaitersOneByOne(std::size_t cpu,
                                         std::size_t maxServes) {
  bool refilled = false;
  std::uint64_t waiterCpu = 0;
  for (std::size_t n = 0; n < maxServes && lock_.popWaiter(waiterCpu); ++n) {
    Task* task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    if (task == nullptr && !refilled) {
      // Refill before answering "nothing ready" — once per burst, same
      // rationale as the batched path.
      refilled = true;
      emitDrain(cpu, addBuffers_.drainInto(*policy_));
      task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    }
    // Only actual hand-offs are trace-worthy: idle waiters re-delegate
    // continuously, and logging every empty answer would saturate the
    // holder's ring with "nothing happened" (see the Scheduler contract).
    // The per-waiter getTask above IS the waiter's own view, so the
    // hand-off is local by construction.
    if (tracer_ != nullptr && task != nullptr)
      tracer_->emit(cpu, TraceEvent::SchedServe, packServePayload(1, 0));
    lock_.serve(reinterpret_cast<std::uintptr_t>(task));
  }
}

}  // namespace ats
