#include "sched/sync_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "instr/tracer.hpp"

namespace ats {

SyncScheduler::SyncScheduler(Topology topo,
                             std::unique_ptr<SchedulerPolicy> policy,
                             std::size_t addBufferCapacity, Tracer* tracer)
    : Scheduler(tracer),
      topo_(std::move(topo)),
      lock_(std::max<std::size_t>(64, topo_.numCpus * 2),
            std::max<std::size_t>(64, topo_.numCpus)),
      policy_(std::move(policy)),
      addBuffers_(topo_.numCpus, addBufferCapacity) {}

void SyncScheduler::addReadyTask(Task* task, std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  if (addBuffers_.tryPush(task, cpu)) return;

  // Overflow protocol: join the FIFO queue and become the server for a
  // moment — drain everything, then answer queued getReadyTask
  // delegations.  Unlike the PTLock scheduler, queueing a ticket here is
  // safe AND useful: getters that pile up behind a queued adder land in
  // the delegation queue and are retired in one combined burst when the
  // adder enters, instead of each needing its own lock hand-off.
  lock_.lock();
  emitDrain(cpu, addBuffers_.drainInto(*policy_));
  policy_->addTask(task, cpu);
  serveWaiters(cpu);
  lock_.unlock();
}

Task* SyncScheduler::getReadyTask(std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  std::uintptr_t item = 0;
  if (!lock_.lockOrDelegate(cpu, item)) {
    return reinterpret_cast<Task*>(item);  // served by the lock holder
  }
  emitDrain(cpu, addBuffers_.drainInto(*policy_));
  Task* task = policy_->getTask(cpu);
  serveWaiters(cpu);
  lock_.unlock();
  return task;
}

void SyncScheduler::serveWaiters(std::size_t cpu) {
  // Each thread has at most one outstanding request, but a served waiter
  // can requeue while we still hold the lock; cap the combining burst so
  // the holder's own latency stays bounded.
  const std::size_t maxServes = 4 * topo_.numCpus + 4;
  std::uint64_t waiterCpu = 0;
  for (std::size_t n = 0; n < maxServes && lock_.popWaiter(waiterCpu); ++n) {
    Task* task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    if (task == nullptr) {
      // Refill before answering "nothing ready".
      emitDrain(cpu, addBuffers_.drainInto(*policy_));
      task = policy_->getTask(static_cast<std::size_t>(waiterCpu));
    }
    // Only actual hand-offs are trace-worthy: idle waiters re-delegate
    // continuously, and logging every empty answer would saturate the
    // holder's ring with "nothing happened" (see the Scheduler contract).
    if (tracer_ != nullptr && task != nullptr)
      tracer_->emit(cpu, TraceEvent::SchedServe, waiterCpu);
    lock_.serve(reinterpret_cast<std::uintptr_t>(task));
  }
}

}  // namespace ats
