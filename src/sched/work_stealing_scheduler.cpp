#include "sched/work_stealing_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "instr/tracer.hpp"
#include "runtime/task.hpp"

namespace ats {

WorkStealingScheduler::WorkStealingScheduler(Topology topo, Options options,
                                             Tracer* tracer)
    : Scheduler(tracer),
      topo_(std::move(topo)),
      probeLimit_(std::max<std::size_t>(1, options.stealProbeLimit)) {
  const std::size_t slots = std::max<std::size_t>(1, topo_.slotCount());
  deques_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    deques_.push_back(
        std::make_unique<ChaseLevDeque<Task*>>(options.dequeCapacity));
  }
  cursors_ = std::make_unique<ProbeCursor[]>(slots);

  // Victim orders, fixed at construction: for slot s, walk the slot
  // ring starting at s+1 and split by NUMA domain (Topology::domainOfSlot
  // is the one shared slot→domain rule — reserved slots, i.e. the
  // spawner, fold onto a real CPU's domain, so the spawner's deque is a
  // local victim for domain 0's workers and vice versa).  Ring order
  // keeps any two slots' victim lists rotations of each other, spreading
  // first-probe pressure instead of having every thief hammer slot 0
  // first.
  localVictims_.resize(slots);
  remoteVictims_.resize(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t home = topo_.domainOfSlot(s);
    for (std::size_t i = 1; i < slots; ++i) {
      const std::size_t v = (s + i) % slots;
      auto& list = topo_.domainOfSlot(v) == home ? localVictims_[s]
                                                 : remoteVictims_[s];
      list.push_back(static_cast<std::uint32_t>(v));
    }
  }
}

void WorkStealingScheduler::addReadyTask(Task* task, std::size_t cpu) {
  assert(cpu < deques_.size());
  // Owner-side push: the Scheduler contract makes the caller slot
  // `cpu`'s single thread, which is exactly the deque's owner role.
  deques_[cpu]->push(task);
}

Task* WorkStealingScheduler::getReadyTask(std::size_t cpu) {
  assert(cpu < deques_.size());
  Task* task = nullptr;
  if (deques_[cpu]->pop(task)) return task;

  // Local domain first — in full, every call: under load this keeps
  // execution where the producer's data lives, and a bounded local
  // probe could strand work a one-domain topology (every test host)
  // would never reach.
  for (const std::uint32_t victim : localVictims_[cpu]) {
    if (stealFrom(victim, cpu, task)) return task;
  }

  // Remote domains: at most probeLimit_ probes behind a rotating
  // cursor.  The rotation is what makes the bound safe — every remote
  // victim is reached within ceil(remotes/probeLimit_) calls, so a
  // bounded probe delays remote work instead of stranding it.
  const std::vector<std::uint32_t>& remotes = remoteVictims_[cpu];
  if (remotes.empty()) return nullptr;
  const std::size_t probes = std::min(probeLimit_, remotes.size());
  const std::size_t start = cursors_[cpu].next % remotes.size();
  for (std::size_t i = 0; i < probes; ++i) {
    const std::size_t idx = (start + i) % remotes.size();
    if (stealFrom(remotes[idx], cpu, task)) {
      // Stay on the productive victim: work arrives in bursts, and the
      // next miss should re-probe where work was just found.
      cursors_[cpu].next = idx;
      return task;
    }
  }
  cursors_[cpu].next = (start + probes) % remotes.size();
  return nullptr;
}

bool WorkStealingScheduler::stealFrom(std::size_t victim, std::size_t cpu,
                                      Task*& out) {
  using Steal = ChaseLevDeque<Task*>::StealResult;
  for (;;) {
    switch (deques_[victim]->steal(out)) {
      case Steal::Success:
        if (tracer_ != nullptr)
          tracer_->emit(cpu, TraceEvent::SchedSteal, victim);
        return true;
      case Steal::Empty:
        return false;
      case Steal::Abort:
        // The element went to a competitor; the victim may hold more.
        // Each retry follows somebody's completed removal, so the loop
        // is bounded by the victim's queue length.
        break;
    }
  }
}

}  // namespace ats
