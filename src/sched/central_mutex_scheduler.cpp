#include "sched/central_mutex_scheduler.hpp"

#include <utility>

namespace ats {

CentralMutexScheduler::CentralMutexScheduler(
    Topology topo, std::unique_ptr<SchedulerPolicy> policy)
    : topo_(std::move(topo)),
      policy_(policy != nullptr ? std::move(policy)
                                : std::make_unique<FifoScheduler>()) {}

void CentralMutexScheduler::addReadyTask(Task* task, std::size_t cpu) {
  std::lock_guard<std::mutex> guard(mutex_);
  policy_->addTask(task, cpu);
}

Task* CentralMutexScheduler::getReadyTask(std::size_t cpu) {
  // Same non-blocking get contract as every scheduler here: a busy lock
  // reads as "nothing ready yet" and the worker polls again.
  std::unique_lock<std::mutex> guard(mutex_, std::try_to_lock);
  if (!guard.owns_lock()) return nullptr;
  return policy_->getTask(cpu);
}

}  // namespace ats
