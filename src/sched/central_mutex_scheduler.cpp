#include "sched/central_mutex_scheduler.hpp"

#include <utility>

#include "instr/tracer.hpp"
#include "sched/policies.hpp"

namespace ats {

CentralMutexScheduler::CentralMutexScheduler(
    Topology topo, std::unique_ptr<SchedulerPolicy> policy, Tracer* tracer)
    : Scheduler(tracer),
      topo_(std::move(topo)),
      policy_(policy != nullptr ? std::move(policy)
                                : std::make_unique<FifoPolicy>()) {}

void CentralMutexScheduler::addReadyTask(Task* task, std::size_t cpu) {
  // The contention probe (try first, log, then block) runs ONLY under a
  // live tracer: the untraced baseline must keep the plain blocking
  // lock it has always been measured with — this scheduler IS the
  // serial-insertion curve, so adding even a failed try_lock CAS to its
  // untraced path would shift the figure it anchors.  Adds are bounded
  // by task count, so the traced probe cannot flood the ring.
  if (tracer_ != nullptr) {
    std::unique_lock<std::mutex> guard(mutex_, std::try_to_lock);
    if (!guard.owns_lock()) {
      tracer_->emit(cpu, TraceEvent::SchedLockContended, cpu);
      guard.lock();
    }
    policy_->addTask(task, cpu);
    return;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  policy_->addTask(task, cpu);
}

Task* CentralMutexScheduler::getReadyTask(std::size_t cpu) {
  // Same non-blocking get contract as every scheduler here: a busy lock
  // reads as "nothing ready yet" and the worker polls again.
  std::unique_lock<std::mutex> guard(mutex_, std::try_to_lock);
  if (!guard.owns_lock()) return nullptr;
  return policy_->getTask(cpu);
}

}  // namespace ats
