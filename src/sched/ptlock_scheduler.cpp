#include "sched/ptlock_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/failpoint.hpp"
#include "instr/tracer.hpp"

namespace ats {

namespace {
/// Cap on the own-domain burst drain in getReadyTask — same order as
/// SyncScheduler's kMaxServeBurst, bounding work done per lock hold.
constexpr std::size_t kLocalDrainBurst = 64;
}  // namespace

PTLockScheduler::PTLockScheduler(Topology topo,
                                 std::unique_ptr<SchedulerPolicy> policy,
                                 std::size_t spscCapacity,
                                 Tracer* tracer)
    // Waiting-array slots must cover every thread that can contend; size
    // for at least the topology and leave headroom for oversubscription.
    : Scheduler(tracer),
      topo_(std::move(topo)),
      lock_(std::max<std::size_t>(64, topo_.slotCount() * 2)),
      policy_(std::move(policy)),
      addBuffers_(topo_, spscCapacity) {}

void PTLockScheduler::addReadyTask(Task* task, std::size_t cpu) {
  assert(cpu < addBuffers_.numCpus());
  // Buffer full: bid for the lock to drain it ourselves, but keep
  // retrying the wait-free push meanwhile — the current holder's drain
  // frees space, so whichever unblocks first wins.  Adds must not drop,
  // and they must not park a reserved ticket in the FIFO queue either
  // (a preempted adder's queued ticket would lock every poller out for
  // whole timeslices on a timeshared host).
  SpinWait w;
  bool contendedLogged = false;
  while (!addBuffers_.tryPush(task, cpu)) {
    // Failpoint: delay/abort drills only (a throw would lose the task);
    // fires once per retry poll while the ring stays full.
    ATS_FAILPOINT(addbuf_overflow);
    if (lock_.tryLock()) {
      // Our own domain's shard is enough to empty the full ring; other
      // domains' adds stay put until a getter goes dry (flat fallback
      // below), keeping the overflow drain off remote cache lines.
      emitDrain(cpu,
                addBuffers_.drainDomain(*policy_, topo_.domainOfSlot(cpu)));
      policy_->addTask(task, cpu);
      lock_.unlock();
      return;
    }
    // The add-side contention event of fig10: a full buffer AND a busy
    // lock means the creating core is stuck behind whoever holds it.
    // Once per episode — the retry loop itself spins at poll frequency.
    if (tracer_ != nullptr && !contendedLogged) {
      tracer_->emit(cpu, TraceEvent::SchedLockContended, cpu);
      contendedLogged = true;
    }
    w.spin();
  }
}

Task* PTLockScheduler::getReadyTask(std::size_t cpu) {
  // Non-blocking poll, per the Scheduler contract: a failed tryLock is
  // externally indistinguishable from an empty queue.  Without
  // delegation this is the best a waiter can do — walk away and retry —
  // and that wasted poll is precisely the cost the DTLock removes.  No
  // contention event here: get-side lock misses happen at poll frequency
  // and the starvation they cause is already visible as WorkerIdle*.
  if (!lock_.tryLock()) return nullptr;
  // Getter's own-domain shard first (bounded): the sharded §3.1 drain.
  // The flat everything-pass runs only when the policy is dry, so a
  // domain with producers but no getters can never strand its adds.
  emitDrain(cpu, addBuffers_.drainDomain(*policy_, topo_.domainOfSlot(cpu),
                                         kLocalDrainBurst));
  Task* task = policy_->getTask(cpu);
  if (task == nullptr) {
    emitDrain(cpu, addBuffers_.drainInto(*policy_));
    task = policy_->getTask(cpu);
  }
  lock_.unlock();
  return task;
}

}  // namespace ats
