#include "deps/waitfree_asm.hpp"

#include <cassert>

#include "common/failpoint.hpp"

namespace ats {

namespace {

AccessNode* readerListOf(std::uintptr_t state) {
  return reinterpret_cast<AccessNode*>(state & ~AccessNode::kFlagMask);
}

std::uintptr_t packReader(AccessNode* reader, std::uintptr_t flags) {
  return reinterpret_cast<std::uintptr_t>(reader) |
         (flags & AccessNode::kFlagMask);
}

}  // namespace

void WaitFreeAsmDeps::registerTask(DepTask* task, const Access* accesses,
                                   std::size_t count, std::size_t cpu) {
  // Failpoint: BEFORE any mutation, so throw mode unwinds with the
  // descriptor untouched and Runtime::registerAndSubmit can reclaim it
  // cleanly (the spawn-failure drill).
  ATS_FAILPOINT(deps_register);
  assert(count <= kMaxAccessesPerTask);
#ifndef NDEBUG
  for (std::size_t i = 0; i < count; ++i)
    for (std::size_t j = i + 1; j < count; ++j)
      assert(accesses[i].object != accesses[j].object &&
             "a task must not declare the same object twice");
#endif

  std::int32_t preconditions = 1;  // creation guard
  std::int32_t writes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    preconditions += accesses[i].isRead() ? 1 : 2;
    if (!accesses[i].isRead()) ++writes;
  }
  task->pendingDeps.store(preconditions, std::memory_order_relaxed);
  task->numAccesses = count;

  // Eager-reclamation references, armed up front: every write access
  // will be published as its object's lastWrite (+1, dropped by the
  // superseding write or quiescent reset) and owns a read group whose
  // storage readers drain (+1, dropped by whoever detects the drain:
  // the closing write when the group is already empty at close, the
  // kClosedBias-landing reader otherwise, or reset when the group never
  // closes).  Readers take NO references — an unclosed group's owner is
  // still pinned by its lastWrite reference, a closed one by the group
  // reference, so the counter they drain cannot die under them.  The
  // load+store is race-free: the task is not published anywhere yet.
  if (writes != 0) {
    task->refCount.store(
        task->refCount.load(std::memory_order_relaxed) + 2 * writes,
        std::memory_order_relaxed);
  }

  // Preconditions that resolve during registration are batched into the
  // guard drop below: one fetch_sub instead of one per resolution.
  std::int32_t resolved = 0;

  for (std::size_t i = 0; i < count; ++i) {
    AccessNode* node = &task->accesses[i];
    node->task = task;
    node->object = accesses[i].object;
    node->read = accesses[i].isRead();

    ObjectAsm& obj = objects_.lookupOrCreate(node->object);
    if (node->read) {
      resolved += registerRead(obj, node);
    } else {
      resolved += registerWrite(obj, node);
    }
  }

  finishRegistration(task, preconditions, resolved, cpu);
}

std::int32_t WaitFreeAsmDeps::registerRead(ObjectAsm& obj,
                                           AccessNode* node) {
  AccessNode* write = obj.lastWrite;
  ReadGroup* group =
      write != nullptr ? &write->succGroup : &obj.rootGroup;
  node->joinedGroup = group;
  node->groupOwner = write != nullptr ? write->task : nullptr;

  if (write != nullptr) {
    // Attach to the predecessor write's packed reader list.  CAS success
    // hands our resolution to the write's completion fetch_or; the
    // group membership rides the plain attached counter, folded in by
    // the closing write.  Observing kCompleted instead means the write
    // already released — resolve ourselves (the acquire is what makes
    // the writer's side effects visible to this reader's body).  The
    // only contender is that single completion RMW, so the loop runs at
    // most twice in practice.
    std::uintptr_t state = write->state.load(std::memory_order_acquire);
    while ((state & AccessNode::kCompleted) == 0) {
      node->nextReader = readerListOf(state);
      if (write->state.compare_exchange_weak(
              state, packReader(node, state), std::memory_order_release,
              std::memory_order_acquire)) {
        ++group->attachedRegistrations;
        return 0;
      }
    }
  }

  // Self-resolved: count ourselves into the group directly.  Relaxed:
  // the increment publishes nothing; the close's fetch_add and the
  // drain's fetch_sub carry the ordering.
  group->pending.fetch_add(1, std::memory_order_relaxed);
  return 1;
}

std::int32_t WaitFreeAsmDeps::registerWrite(ObjectAsm& obj,
                                            AccessNode* node) {
  node->state.store(0, std::memory_order_relaxed);
  node->successor.store(nullptr, std::memory_order_relaxed);
  node->succGroup.pending.store(0, std::memory_order_relaxed);
  node->succGroup.closingWrite.store(nullptr, std::memory_order_relaxed);
  node->succGroup.attachedRegistrations = 0;

  std::int32_t resolved = 0;
  AccessNode* prev = obj.lastWrite;

  // True when this close observed the predecessor's group already fully
  // drained — then no reader will ever land on kClosedBias, so the
  // group reference falls to us instead of a landing reader.
  bool groupDrainedAtClose = false;

  // Read-group precondition.  Group membership is `pending` plus the
  // attached readers only this (serialized) registration path knows
  // about; outstanding readers = pending + attached, so the drained
  // check compares against -attached.
  ReadGroup* group =
      prev != nullptr ? &prev->succGroup : &obj.rootGroup;
  const std::int64_t attached = group->attachedRegistrations;
  if (group->pending.load(std::memory_order_acquire) == -attached) {
    // Every reader that ever joined this group already completed (their
    // memberships are ordered before this serialized registration, and
    // the count only drains from there).  The counter is dead — skip
    // the close entirely.  Acquire: reading the fully-drained value
    // synchronizes with the readers' release fetch_subs, so this
    // write's body is ordered after every reader's body even though no
    // RMW happens on this path.
    ++resolved;
    groupDrainedAtClose = true;
  } else {
    // Close the group, folding the attached readers into the bias.  The
    // park-then-bias order matters: a reader that observes the bias
    // through the counter's RMW chain also sees `closingWrite`.
    group->closingWrite.store(node, std::memory_order_release);
    const std::int64_t beforeClose =
        group->pending.fetch_add(ReadGroup::kClosedBias + attached,
                                 std::memory_order_acq_rel);
    if (beforeClose == -attached) {
      ++resolved;
      groupDrainedAtClose = true;
    }
  }

  // Write-chain precondition.
  if (prev == nullptr) {
    ++resolved;
  } else {
    prev->successor.store(node, std::memory_order_release);
    const std::uintptr_t prevState =
        prev->state.fetch_or(AccessNode::kHasSuccessor,
                             std::memory_order_acq_rel);
    if (prevState & AccessNode::kCompleted) ++resolved;
  }

  // Publish as the object's last write (our lastWrite reference was
  // pre-armed by registerTask) and drop the superseded write's
  // references: its lastWrite reference always, its group reference too
  // when the close found the group already drained — strictly after the
  // group close and chain link above, which were the final touches of
  // `prev`'s storage on this path.
  obj.lastWrite = node;
  if (prev != nullptr) prev->task->dropRef(groupDrainedAtClose ? 2 : 1);
  return resolved;
}

void WaitFreeAsmDeps::release(DepTask* task, std::size_t cpu) {
  for (std::size_t i = 0; i < task->numAccesses; ++i) {
    AccessNode* node = &task->accesses[i];
    if (node->read) {
      // Drain our group so the write that closed it can go.
      ReadGroup* group = node->joinedGroup;
      const std::int64_t remaining =
          group->pending.fetch_sub(1, std::memory_order_acq_rel) - 1;
      if (remaining == ReadGroup::kClosedBias) {
        AccessNode* write =
            group->closingWrite.load(std::memory_order_acquire);
        resolveOne(write->task, cpu);
        // We landed the drain of a closed group: every other reader's
        // fetch_sub is ordered before ours and none of them touches the
        // group again, so the owner's group reference dies with us.
        // (An unclosed group's owner is still pinned as lastWrite; the
        // root group has no owner.)
        if (node->groupOwner != nullptr) node->groupOwner->dropRef();
      }
    } else {
      // One RMW completes the write: it closes the reader list (any
      // reader CAS from here on sees kCompleted and resolves itself),
      // collects everyone already attached, and reports the successor.
      const std::uintptr_t state =
          node->state.fetch_or(AccessNode::kCompleted,
                               std::memory_order_acq_rel);
      // The CAS chain is LIFO — reverse it so readers go ready in
      // registration order (FIFO fairness, like the locked baseline).
      AccessNode* reader = readerListOf(state);
      AccessNode* ordered = nullptr;
      while (reader != nullptr) {
        AccessNode* next = reader->nextReader;
        reader->nextReader = ordered;
        ordered = reader;
        reader = next;
      }
      // Read each link BEFORE resolving its node: resolveOne may run,
      // complete, and eagerly reclaim the reader's descriptor — and the
      // link lives inside it.
      while (ordered != nullptr) {
        AccessNode* next = ordered->nextReader;
        resolveOne(ordered->task, cpu);
        ordered = next;
      }
      if (state & AccessNode::kHasSuccessor) {
        AccessNode* succ =
            node->successor.load(std::memory_order_acquire);
        resolveOne(succ->task, cpu);
      }
    }
  }
}

void WaitFreeAsmDeps::reset() {
  // New epoch first: every TLS-cached entry for this table goes stale
  // before any field is cleared, so a thread resuming after quiescence
  // re-probes instead of trusting a pre-reset stamp.
  objects_.invalidateThreadCaches();
  objects_.forEach([](ObjectAsm& obj) {
    if (obj.lastWrite != nullptr) {
      // Quiescence: nothing will chase this chain again, so the final
      // write's lastWrite reference can go, and — since its group was
      // never closed (a closing write would have superseded it) — its
      // own group reference with it.
      obj.lastWrite->task->dropRef(2);
      obj.lastWrite = nullptr;
    }
    obj.rootGroup.pending.store(0, std::memory_order_relaxed);
    obj.rootGroup.closingWrite.store(nullptr, std::memory_order_relaxed);
    obj.rootGroup.attachedRegistrations = 0;
  });
}

}  // namespace ats
