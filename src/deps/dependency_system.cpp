#include "deps/dependency_system.hpp"

#include "deps/fine_grained_locks.hpp"
#include "deps/waitfree_asm.hpp"

namespace ats {

std::unique_ptr<DependencySystem> makeDependencySystem(DepsKind kind,
                                                       ReadySink sink) {
  switch (kind) {
    case DepsKind::FineGrainedLocks:
      return std::make_unique<FineGrainedLocksDeps>(sink);
    case DepsKind::WaitFreeAsm:
      return std::make_unique<WaitFreeAsmDeps>(sink);
  }
  return nullptr;
}

}  // namespace ats
