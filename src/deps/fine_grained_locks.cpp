#include "deps/fine_grained_locks.hpp"

#include <cassert>
#include <mutex>

#include "common/failpoint.hpp"

namespace ats {

void FineGrainedLocksDeps::registerTask(DepTask* task,
                                        const Access* accesses,
                                        std::size_t count, std::size_t cpu) {
  // Failpoint: BEFORE any mutation (same contract as deps_register in
  // the wait-free system) so throw mode is a clean spawn failure.
  ATS_FAILPOINT(deps_register_locked);
  assert(count <= kMaxAccessesPerTask);
#ifndef NDEBUG
  for (std::size_t i = 0; i < count; ++i)
    for (std::size_t j = i + 1; j < count; ++j)
      assert(accesses[i].object != accesses[j].object &&
             "a task must not declare the same object twice");
#endif

  task->pendingDeps.store(static_cast<std::int32_t>(count) + 1,
                          std::memory_order_relaxed);
  task->numAccesses = count;

  // Accesses eligible at registration are batched into the guard drop,
  // mirroring the wait-free system's bookkeeping.
  std::int32_t resolved = 0;

  for (std::size_t i = 0; i < count; ++i) {
    AccessNode* node = &task->accesses[i];
    node->task = task;
    node->object = accesses[i].object;
    node->read = accesses[i].isRead();
    node->prevQ = nullptr;
    node->nextQ = nullptr;
    node->queueSatisfied = false;

    ObjectLocked& obj = objects_.lookupOrCreate(node->object);
    node->homeEntry = &obj;

    bool eligible;
    {
      std::lock_guard<SpinLock> guard(obj.lock);
      node->prevQ = obj.tail;
      if (obj.tail != nullptr)
        obj.tail->nextQ = node;
      else
        obj.head = node;
      obj.tail = node;

      eligible = node->read ? obj.queuedWrites == 0 : obj.head == node;
      if (!node->read) ++obj.queuedWrites;
      if (eligible) node->queueSatisfied = true;
    }
    if (eligible) ++resolved;
  }

  finishRegistration(task, static_cast<std::int32_t>(count) + 1,
                     resolved, cpu);
}

void FineGrainedLocksDeps::release(DepTask* task, std::size_t cpu) {
  for (std::size_t i = 0; i < task->numAccesses; ++i) {
    AccessNode* node = &task->accesses[i];
    ObjectLocked& obj = *static_cast<ObjectLocked*>(node->homeEntry);

    // Collect newly eligible accesses under the lock (in queue order, so
    // FIFO fairness survives), resolve outside it — the sink may reenter
    // the scheduler.  The chain reuses the ASM's successor field, unused
    // by this implementation.
    AccessNode* eligibleHead = nullptr;
    AccessNode* eligibleTail = nullptr;
    const auto collect = [&](AccessNode* ready) {
      ready->queueSatisfied = true;
      ready->successor.store(nullptr, std::memory_order_relaxed);
      if (eligibleTail != nullptr)
        eligibleTail->successor.store(ready, std::memory_order_relaxed);
      else
        eligibleHead = ready;
      eligibleTail = ready;
    };
    {
      std::lock_guard<SpinLock> guard(obj.lock);
      if (node->prevQ != nullptr)
        node->prevQ->nextQ = node->nextQ;
      else
        obj.head = node->nextQ;
      if (node->nextQ != nullptr)
        node->nextQ->prevQ = node->prevQ;
      else
        obj.tail = node->prevQ;
      if (!node->read) --obj.queuedWrites;

      AccessNode* cursor = obj.head;
      if (cursor != nullptr && !cursor->read) {
        if (!cursor->queueSatisfied) collect(cursor);
      } else {
        for (; cursor != nullptr && cursor->read; cursor = cursor->nextQ) {
          if (!cursor->queueSatisfied) collect(cursor);
        }
      }
    }
    while (eligibleHead != nullptr) {
      AccessNode* next =
          eligibleHead->successor.load(std::memory_order_relaxed);
      resolveOne(eligibleHead->task, cpu);
      eligibleHead = next;
    }
  }
}

void FineGrainedLocksDeps::reset() {
  objects_.invalidateThreadCaches();  // TLS entries go stale with the epoch
  objects_.forEach([](ObjectLocked& obj) {
    std::lock_guard<SpinLock> guard(obj.lock);
    assert(obj.head == nullptr && "reset with accesses still queued");
    obj.head = nullptr;
    obj.tail = nullptr;
    obj.queuedWrites = 0;
  });
}

}  // namespace ats
