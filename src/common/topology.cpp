#include "common/topology.hpp"

#include <algorithm>
#include <thread>

namespace ats {

namespace {

Topology presetShape(MachinePreset preset) {
  Topology t;
  t.preset = preset;
  switch (preset) {
    case MachinePreset::Xeon:
      t.numCpus = 48;
      t.numNumaDomains = 2;
      break;
    case MachinePreset::Rome:
      t.numCpus = 128;
      t.numNumaDomains = 8;
      break;
    case MachinePreset::Graviton:
      t.numCpus = 64;
      t.numNumaDomains = 1;
      break;
    case MachinePreset::Host: {
      const unsigned hw = std::thread::hardware_concurrency();
      t.numCpus = hw > 0 ? hw : 1;
      t.numNumaDomains = 1;
      break;
    }
  }
  return t;
}

}  // namespace

Topology makeTopology(MachinePreset preset, std::size_t numCpus) {
  Topology t = presetShape(preset);
  if (numCpus > 0) {
    t.numCpus = numCpus;
    t.numNumaDomains = std::min(t.numNumaDomains, t.numCpus);
  }
  return t;
}

const char* presetName(MachinePreset preset) {
  switch (preset) {
    case MachinePreset::Host:
      return "host";
    case MachinePreset::Xeon:
      return "xeon";
    case MachinePreset::Rome:
      return "rome";
    case MachinePreset::Graviton:
      return "graviton";
  }
  return "unknown";
}

}  // namespace ats
