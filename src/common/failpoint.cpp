#include "common/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/fatal.hpp"

namespace ats {

namespace {

/// Per-thread xorshift64* — the probability gate must not serialize
/// armed sites on a shared RNG line, and must not perturb the timing
/// it is injecting faults into.
std::uint64_t rngNext() {
  thread_local std::uint64_t state =
      0x9E3779B97F4A7C15ull ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1ull);
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

FailpointMode parseMode(const std::string& token, bool& ok) {
  ok = true;
  if (token == "throw") return FailpointMode::Throw;
  if (token == "abort") return FailpointMode::Abort;
  if (token == "delay-us" || token == "delay") return FailpointMode::DelayUs;
  ok = false;
  return FailpointMode::Off;
}

}  // namespace

void Failpoint::arm(FailpointMode mode, double prob, std::uint64_t count,
                    std::uint64_t delayUs) {
  if (prob < 0.0) prob = 0.0;
  if (prob > 1.0) prob = 1.0;
  // prob == 1.0 must ALWAYS fire; the threshold compare is strict-less,
  // so saturate to the max representable gate.
  const auto threshold =
      prob >= 1.0 ? ~std::uint32_t{0}
                  : static_cast<std::uint32_t>(prob * 4294967296.0);
  probThreshold_.store(threshold, std::memory_order_relaxed);
  remaining_.store(count == 0 ? std::int64_t{-1}
                              : static_cast<std::int64_t>(count),
                   std::memory_order_relaxed);
  delayUs_.store(delayUs, std::memory_order_relaxed);
  mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  // Publish last: a site observing armed sees a fully-configured node
  // (the fields above are only read after this load in evaluate()).
  armed_.store(mode != FailpointMode::Off, std::memory_order_release);
}

void Failpoint::disarm() {
  armed_.store(false, std::memory_order_release);
  mode_.store(static_cast<std::uint8_t>(FailpointMode::Off),
              std::memory_order_relaxed);
}

void Failpoint::evaluate() {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t threshold =
      probThreshold_.load(std::memory_order_relaxed);
  if (threshold != ~std::uint32_t{0} &&
      static_cast<std::uint32_t>(rngNext() >> 32) >= threshold) {
    return;
  }
  // Capture the mode BEFORE spending the budget: the last shot disarms,
  // and disarm() resets mode_ to Off — reading it afterwards would turn
  // the Nth fire into a silent no-op.
  const auto mode =
      static_cast<FailpointMode>(mode_.load(std::memory_order_relaxed));
  // Spend one shot of the count budget.  A lost race past zero is
  // restored, so a `count`-armed failpoint fires exactly count times
  // no matter how many threads hit it concurrently.
  std::int64_t remaining = remaining_.load(std::memory_order_relaxed);
  if (remaining >= 0) {
    const std::int64_t before =
        remaining_.fetch_sub(1, std::memory_order_relaxed);
    if (before <= 0) {
      remaining_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (before == 1) disarm();  // budget spent: back to the one-load path
  }
  fires_.fetch_add(1, std::memory_order_relaxed);
  switch (mode) {
    case FailpointMode::Throw:
      throw FailpointError(name_, id_);
    case FailpointMode::DelayUs:
      std::this_thread::sleep_for(std::chrono::microseconds(
          delayUs_.load(std::memory_order_relaxed)));
      return;
    case FailpointMode::Abort:
      fatal("failpoint '%s' fired in abort mode (ATS_FAILPOINTS drill)",
            name_.c_str());
    case FailpointMode::Off:
      return;
  }
}

struct FailpointRegistry::Impl {
  std::mutex lock;
  // unique_ptr nodes: Failpoint addresses must stay stable while the
  // map rehashes (sites cache references forever).
  std::unordered_map<std::string, std::unique_ptr<Failpoint>> nodes;
  std::uint32_t nextId = 1;  // 0 = "not a failpoint" in trace payloads
};

FailpointRegistry::FailpointRegistry() : impl_(new Impl) {
  // Env arming happens exactly once, before any site can be armed —
  // instance() construction is the first thing every ATS_FAILPOINT
  // static init runs through.
  const char* spec = std::getenv("ATS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  std::string all(spec);
  std::size_t start = 0;
  while (start <= all.size()) {
    const std::size_t comma = all.find(',', start);
    const std::string one =
        all.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!one.empty() && !armFromSpec(one)) {
      std::fprintf(stderr,
                   "ats: ATS_FAILPOINTS: ignoring malformed spec '%s' "
                   "(want name:prob:count[:mode[:delay_us]])\n",
                   one.c_str());
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

FailpointRegistry& FailpointRegistry::instance() {
  // Leaked on purpose: ATS_FAILPOINT statics reference nodes from any
  // translation unit's destructors, so the registry must never die.
  static FailpointRegistry* registry = new FailpointRegistry;
  return *registry;
}

Failpoint& FailpointRegistry::site(const char* name) {
  std::lock_guard<std::mutex> guard(impl_->lock);
  auto it = impl_->nodes.find(name);
  if (it == impl_->nodes.end()) {
    it = impl_->nodes
             .emplace(name,
                      std::make_unique<Failpoint>(name, impl_->nextId++))
             .first;
  }
  return *it->second;
}

bool FailpointRegistry::armFromSpec(const std::string& spec) {
  // name:prob:count[:mode[:delay_us]]
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    fields.push_back(spec.substr(
        start, colon == std::string::npos ? std::string::npos
                                          : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (fields.size() < 3 || fields.size() > 5 || fields[0].empty())
    return false;
  double prob = 0;
  std::uint64_t count = 0;
  std::uint64_t delayUs = 100;
  try {
    prob = std::stod(fields[1]);
    count = std::stoull(fields[2]);
    if (fields.size() >= 5) delayUs = std::stoull(fields[4]);
  } catch (...) {
    return false;
  }
  if (prob < 0.0 || prob > 1.0) return false;
  FailpointMode mode = FailpointMode::Throw;
  if (fields.size() >= 4) {
    bool ok = false;
    mode = parseMode(fields[3], ok);
    if (!ok) return false;
  }
  return arm(fields[0].c_str(), mode, prob, count, delayUs);
}

bool FailpointRegistry::arm(const char* name, FailpointMode mode,
                            double prob, std::uint64_t count,
                            std::uint64_t delayUs) {
  site(name).arm(mode, prob, count, delayUs);
  return true;
}

void FailpointRegistry::disarm(const char* name) { site(name).disarm(); }

void FailpointRegistry::disarmAll() {
  std::lock_guard<std::mutex> guard(impl_->lock);
  for (auto& [name, node] : impl_->nodes) node->disarm();
}

std::vector<Failpoint*> FailpointRegistry::all() {
  std::lock_guard<std::mutex> guard(impl_->lock);
  std::vector<Failpoint*> out;
  out.reserve(impl_->nodes.size());
  for (auto& [name, node] : impl_->nodes) out.push_back(node.get());
  return out;
}

}  // namespace ats
