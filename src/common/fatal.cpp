#include "common/fatal.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ats {

namespace {

// Hook + ctx in one word-pair, swapped together under a tiny spin so a
// fatal racing an install never calls a hook with the other owner's
// ctx.  (fatal is the cold path of cold paths; a CAS loop is fine.)
struct HookSlot {
  FatalHook hook = nullptr;
  void* ctx = nullptr;
};
std::atomic<HookSlot*> gHook{nullptr};

}  // namespace

void installFatalHook(FatalHook hook, void* ctx) {
  HookSlot* next = nullptr;
  if (hook != nullptr) next = new HookSlot{hook, ctx};
  HookSlot* prev = gHook.exchange(next, std::memory_order_acq_rel);
  delete prev;
}

namespace detail {

void fatalImpl(const char* file, unsigned line, const char* fmt, ...) {
  // Strip the build-tree prefix down to dir/file — the part a reader
  // can act on without caring where the checkout lives.
  const char* shortFile = file;
  const char* lastSlash = nullptr;
  const char* prevSlash = nullptr;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      prevSlash = lastSlash;
      lastSlash = p;
    }
  }
  if (prevSlash != nullptr) {
    shortFile = prevSlash + 1;
  } else if (lastSlash != nullptr) {
    shortFile = lastSlash + 1;
  }
  std::fprintf(stderr, "ats: FATAL %s:%u: ", shortFile, line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  // Save the evidence before dying: the installed hook flushes the
  // attached tracer's rings to ATS_TRACE_DIR (see Runtime's install).
  if (HookSlot* slot = gHook.load(std::memory_order_acquire)) {
    slot->hook(slot->ctx);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail

}  // namespace ats
