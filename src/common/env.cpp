#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ats {

bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0 && std::strcmp(v, "no") != 0;
}

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  // strtoull silently wraps negative input ("-1" -> 2^64-1); treat any
  // non-digit lead as the garbage the contract promises to reject.
  if (*v < '0' || *v > '9') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::string envString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace ats
