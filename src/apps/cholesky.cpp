// Cholesky: blocked right-looking factorization of an SPD matrix — the
// paper set's triangular-solve-chain workload.  Four tile kernels
// (potrf / trsm / syrk / gemm) with the textbook OmpSs dependency
// clauses; the DAG narrows toward the critical path along the diagonal,
// which is exactly the shape that punishes slow dependency release.
// Blocked and unblocked factorizations regroup the trailing-sum
// association, so this app carries the widest tolerance of the set.
#include <cmath>
#include <cstddef>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

class CholeskyApp final : public App {
 public:
  explicit CholeskyApp(AppScale scale)
      : App("cholesky", scale, /*tolerance=*/1e-8),
        n_(scale == AppScale::Full ? 512 : 128) {
    a0_.resize(n_ * n_);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t j = 0; j < n_; ++j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        a0_[i * n_ + j] = 1.0 / (1.0 + d) + (i == j ? static_cast<double>(n_) : 0.0);
      }
  }

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {256, 128, 64, 32, 16};
    return {64, 32, 16, 8};
  }

  double totalWorkUnits() const override {
    const double n = static_cast<double>(n_);
    return n * n * n / 3.0;  // flops of the factorization
  }

  void runSerial() override {
    ref_ = a0_;
    // Unblocked right-looking Cholesky, lower triangle in place.
    for (std::size_t k = 0; k < n_; ++k) {
      const double pivot = std::sqrt(ref_[k * n_ + k]);
      ref_[k * n_ + k] = pivot;
      for (std::size_t i = k + 1; i < n_; ++i) ref_[i * n_ + k] /= pivot;
      for (std::size_t j = k + 1; j < n_; ++j)
        for (std::size_t i = j; i < n_; ++i)
          ref_[i * n_ + j] -= ref_[i * n_ + k] * ref_[j * n_ + k];
    }
    zeroUpper(ref_);
  }

  void initParallel(std::size_t) override { l_ = a0_; }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nt = n_ / bs;
    std::size_t tasks = 0;
    for (std::size_t k = 0; k < nt; ++k) {
      rt.spawn({inout(tok(k, k, bs))}, [this, k, bs] { potrf(k, bs); });
      ++tasks;
      for (std::size_t i = k + 1; i < nt; ++i) {
        rt.spawn({in(tok(k, k, bs)), inout(tok(i, k, bs))},
                 [this, k, i, bs] { trsm(k, i, bs); });
        ++tasks;
      }
      for (std::size_t i = k + 1; i < nt; ++i) {
        rt.spawn({in(tok(i, k, bs)), inout(tok(i, i, bs))},
                 [this, k, i, bs] { syrk(k, i, bs); });
        ++tasks;
        for (std::size_t j = k + 1; j < i; ++j) {
          rt.spawn({in(tok(i, k, bs)), in(tok(j, k, bs)),
                    inout(tok(i, j, bs))},
                   [this, k, i, j, bs] { gemm(k, i, j, bs); });
          ++tasks;
        }
      }
    }
    rt.taskwait();
    zeroUpper(l_);
    return tasks;
  }

  VerifyResult verify() const override { return compare(ref_, l_, tolerance()); }

  void corruptOutput() override { l_[(n_ - 1) * n_] += 1.0; }

 private:
  double& tok(std::size_t ti, std::size_t tj, std::size_t bs) {
    return l_[(ti * bs) * n_ + tj * bs];
  }

  /// Unblocked Cholesky of diagonal tile (k,k).
  void potrf(std::size_t k, std::size_t bs) {
    const std::size_t o = k * bs;
    for (std::size_t c = 0; c < bs; ++c) {
      const double pivot = std::sqrt(l_[(o + c) * n_ + o + c]);
      l_[(o + c) * n_ + o + c] = pivot;
      for (std::size_t r = c + 1; r < bs; ++r) l_[(o + r) * n_ + o + c] /= pivot;
      for (std::size_t j = c + 1; j < bs; ++j)
        for (std::size_t r = j; r < bs; ++r)
          l_[(o + r) * n_ + o + j] -=
              l_[(o + r) * n_ + o + c] * l_[(o + j) * n_ + o + c];
    }
  }

  /// Tile (i,k) := tile (i,k) * L(k,k)^-T  (forward solve per row).
  void trsm(std::size_t k, std::size_t i, std::size_t bs) {
    const std::size_t ok = k * bs, oi = i * bs;
    for (std::size_t r = 0; r < bs; ++r)
      for (std::size_t c = 0; c < bs; ++c) {
        double x = l_[(oi + r) * n_ + ok + c];
        for (std::size_t m = 0; m < c; ++m)
          x -= l_[(oi + r) * n_ + ok + m] * l_[(ok + c) * n_ + ok + m];
        l_[(oi + r) * n_ + ok + c] = x / l_[(ok + c) * n_ + ok + c];
      }
  }

  /// Diagonal tile (i,i) -= L(i,k) * L(i,k)^T  (lower part only).
  void syrk(std::size_t k, std::size_t i, std::size_t bs) {
    const std::size_t ok = k * bs, oi = i * bs;
    for (std::size_t r = 0; r < bs; ++r)
      for (std::size_t c = 0; c <= r; ++c) {
        double x = l_[(oi + r) * n_ + oi + c];
        for (std::size_t m = 0; m < bs; ++m)
          x -= l_[(oi + r) * n_ + ok + m] * l_[(oi + c) * n_ + ok + m];
        l_[(oi + r) * n_ + oi + c] = x;
      }
  }

  /// Tile (i,j) -= L(i,k) * L(j,k)^T.
  void gemm(std::size_t k, std::size_t i, std::size_t j, std::size_t bs) {
    const std::size_t ok = k * bs, oi = i * bs, oj = j * bs;
    for (std::size_t r = 0; r < bs; ++r)
      for (std::size_t c = 0; c < bs; ++c) {
        double x = l_[(oi + r) * n_ + oj + c];
        for (std::size_t m = 0; m < bs; ++m)
          x -= l_[(oi + r) * n_ + ok + m] * l_[(oj + c) * n_ + ok + m];
        l_[(oi + r) * n_ + oj + c] = x;
      }
  }

  void zeroUpper(std::vector<double>& m) const {
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t j = i + 1; j < n_; ++j) m[i * n_ + j] = 0.0;
  }

  std::size_t n_;
  std::vector<double> a0_, l_, ref_;
};

}  // namespace

std::unique_ptr<App> makeCholesky(AppScale scale) {
  return std::make_unique<CholeskyApp>(scale);
}

}  // namespace ats::apps
