// HPCCG proxy: conjugate gradient on a screened 1D Poisson system
// (A = tridiag(-1, 4, -1), SPD, condition ~3 so both runs converge to
// machine precision well inside the fixed iteration budget).  The WHOLE
// solve — every matvec, axpy, dot-product partial, and scalar update of
// every iteration — is spawned up front as one task graph with a single
// trailing taskwait: sparse-matvec halo fans feed block-chained dot
// reductions feeding single scalar tasks that fan back out, which is the
// long-dependency-chain stress the paper's HPCCG rows measure.  Dot
// products regroup by block, so the tolerance is reduction-class.
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

class HpccgApp final : public App {
 public:
  explicit HpccgApp(AppScale scale)
      : App("hpccg", scale, /*tolerance=*/1e-7),
        n_(scale == AppScale::Full ? 262144 : 16384),
        iters_(scale == AppScale::Full ? 50 : 25) {
    // b = A * ones, so the exact solution is all-ones.
    b_.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      b_[i] = 4.0;
      if (i > 0) b_[i] -= 1.0;
      if (i + 1 < n_) b_[i] -= 1.0;
    }
  }

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {65536, 32768, 16384, 8192, 4096, 1024};
    return {4096, 2048, 1024, 512, 256};
  }

  double totalWorkUnits() const override {
    // Per iteration: 5n matvec + ~10n vector/dot flops.
    return 15.0 * static_cast<double>(iters_) * static_cast<double>(n_);
  }

  void runSerial() override {
    std::vector<double> x(n_, 0.0), r = b_, p = b_, ap(n_, 0.0);
    double rsold = dotSerial(r, r);
    for (std::size_t it = 0; it < iters_; ++it) {
      matvecRange(p, ap, 0, n_);
      double pap = 0.0;
      for (std::size_t i = 0; i < n_; ++i) pap += p[i] * ap[i];
      const double alpha = rsold / pap;
      for (std::size_t i = 0; i < n_; ++i) x[i] += alpha * p[i];
      for (std::size_t i = 0; i < n_; ++i) r[i] -= alpha * ap[i];
      const double rsnew = dotSerial(r, r);
      const double beta = rsnew / rsold;
      rsold = rsnew;
      for (std::size_t i = 0; i < n_; ++i) p[i] = r[i] + beta * p[i];
    }
    refX_ = std::move(x);
  }

  void initParallel(std::size_t blockSize) override {
    x_.assign(n_, 0.0);
    r_ = b_;
    p_ = b_;
    ap_.assign(n_, 0.0);
    const std::size_t nb = n_ / blockSize;
    dotP_.assign(nb, 0.0);
    dotR_.assign(nb, 0.0);
    // rsold = <r0, r0>, computed serially: it seeds the graph, the
    // per-iteration reductions are the measured part.
    rsold_ = dotSerial(r_, r_);
    pap_ = rsnew_ = alpha_ = beta_ = 0.0;
  }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nb = n_ / bs;
    std::size_t tasks = 0;
    for (std::size_t it = 0; it < iters_; ++it) {
      // Ap = A p  (halo matvec).
      for (std::size_t b = 0; b < nb; ++b) {
        std::array<Access, 4> acc;
        std::size_t na = 0;
        if (b > 0) acc[na++] = in(p_[(b - 1) * bs]);
        acc[na++] = in(p_[b * bs]);
        if (b + 1 < nb) acc[na++] = in(p_[(b + 1) * bs]);
        acc[na++] = out(ap_[b * bs]);
        rt.spawn(std::span<const Access>(acc.data(), na), [this, b, bs] {
          matvecRange(p_, ap_, b * bs, (b + 1) * bs);
        });
        ++tasks;
      }
      // pAp = <p, Ap>: block partials, then a chain fold.
      for (std::size_t b = 0; b < nb; ++b) {
        rt.spawn({in(p_[b * bs]), in(ap_[b * bs]), out(dotP_[b])},
                 [this, b, bs] {
                   double s = 0.0;
                   for (std::size_t i = b * bs; i < (b + 1) * bs; ++i)
                     s += p_[i] * ap_[i];
                   dotP_[b] = s;
                 });
        ++tasks;
      }
      rt.spawn({out(pap_)}, [this] { pap_ = 0.0; });
      ++tasks;
      for (std::size_t b = 0; b < nb; ++b) {
        rt.spawn({in(dotP_[b]), inout(pap_)}, [this, b] { pap_ += dotP_[b]; });
        ++tasks;
      }
      rt.spawn({in(pap_), in(rsold_), out(alpha_)},
               [this] { alpha_ = rsold_ / pap_; });
      ++tasks;
      // x += alpha p ; r -= alpha Ap ; rsnew = <r, r>.
      for (std::size_t b = 0; b < nb; ++b) {
        rt.spawn({in(alpha_), in(p_[b * bs]), inout(x_[b * bs])},
                 [this, b, bs] {
                   for (std::size_t i = b * bs; i < (b + 1) * bs; ++i)
                     x_[i] += alpha_ * p_[i];
                 });
        rt.spawn({in(alpha_), in(ap_[b * bs]), inout(r_[b * bs])},
                 [this, b, bs] {
                   for (std::size_t i = b * bs; i < (b + 1) * bs; ++i)
                     r_[i] -= alpha_ * ap_[i];
                 });
        rt.spawn({in(r_[b * bs]), out(dotR_[b])}, [this, b, bs] {
          double s = 0.0;
          for (std::size_t i = b * bs; i < (b + 1) * bs; ++i)
            s += r_[i] * r_[i];
          dotR_[b] = s;
        });
        tasks += 3;
      }
      rt.spawn({out(rsnew_)}, [this] { rsnew_ = 0.0; });
      ++tasks;
      for (std::size_t b = 0; b < nb; ++b) {
        rt.spawn({in(dotR_[b]), inout(rsnew_)},
                 [this, b] { rsnew_ += dotR_[b]; });
        ++tasks;
      }
      rt.spawn({in(rsnew_), inout(rsold_), out(beta_)}, [this] {
        beta_ = rsnew_ / rsold_;
        rsold_ = rsnew_;
      });
      ++tasks;
      // p = r + beta p.
      for (std::size_t b = 0; b < nb; ++b) {
        rt.spawn({in(beta_), in(r_[b * bs]), inout(p_[b * bs])},
                 [this, b, bs] {
                   for (std::size_t i = b * bs; i < (b + 1) * bs; ++i)
                     p_[i] = r_[i] + beta_ * p_[i];
                 });
        ++tasks;
      }
    }
    rt.taskwait();
    return tasks;
  }

  VerifyResult verify() const override { return compare(refX_, x_, tolerance()); }

  void corruptOutput() override { x_[n_ / 4] += 1.0; }

 private:
  static double dotSerial(const std::vector<double>& a,
                          const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  }

  /// y[i0..i1) = (A v)[i0..i1) for A = tridiag(-1, 4, -1).
  void matvecRange(const std::vector<double>& v, std::vector<double>& y,
                   std::size_t i0, std::size_t i1) const {
    for (std::size_t i = i0; i < i1; ++i) {
      double s = 4.0 * v[i];
      if (i > 0) s -= v[i - 1];
      if (i + 1 < n_) s -= v[i + 1];
      y[i] = s;
    }
  }

  std::size_t n_, iters_;
  std::vector<double> b_, x_, r_, p_, ap_, refX_;
  std::vector<double> dotP_, dotR_;
  double rsold_ = 0.0, rsnew_ = 0.0, pap_ = 0.0, alpha_ = 0.0, beta_ = 0.0;
};

}  // namespace

std::unique_ptr<App> makeHpccg(AppScale scale) {
  return std::make_unique<HpccgApp>(scale);
}

}  // namespace ats::apps
