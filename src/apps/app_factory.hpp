#pragma once

// Internal factory surface of the apps layer: one constructor per app
// kernel, dispatched by makeApp (app.cpp).  Not installed; the public
// entry point is apps/app.hpp.

#include <memory>

#include "apps/app.hpp"

namespace ats::apps {

std::unique_ptr<App> makeDotprod(AppScale scale);
std::unique_ptr<App> makeMatmul(AppScale scale);
std::unique_ptr<App> makeHeat(AppScale scale);
std::unique_ptr<App> makeNbody(AppScale scale);
std::unique_ptr<App> makeCholesky(AppScale scale);
std::unique_ptr<App> makeHpccg(AppScale scale);
std::unique_ptr<App> makeLulesh(AppScale scale);
std::unique_ptr<App> makeMiniamr(AppScale scale);

}  // namespace ats::apps
