// NBody: blocked all-pairs gravity with softening.  Each timestep is
// three phases over particle blocks — zero the accelerations, accumulate
// block-against-block forces, integrate — and the dependency shape is a
// dense bipartite fan: every force task reads one source block's
// positions and inout-chains on one target block's accelerations, so nb
// independent chains of nb tasks each run concurrently.  The chains fix
// the source-block accumulation order to j ascending, matching the
// serial loops exactly (bit-exact at every block size).
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

constexpr double kDt = 0.01;
constexpr double kSoftening = 0.1;  // eps^2 added to every distance

class NbodyApp final : public App {
 public:
  explicit NbodyApp(AppScale scale)
      : App("nbody", scale, /*tolerance=*/1e-12),
        n_(scale == AppScale::Full ? 4096 : 1024),
        steps_(scale == AppScale::Full ? 4 : 2) {}

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {1024, 512, 256, 128, 64};
    return {256, 128, 64, 32};
  }

  double totalWorkUnits() const override {
    // ~20 flops per pairwise interaction.
    return 20.0 * static_cast<double>(steps_) * static_cast<double>(n_) *
           static_cast<double>(n_);
  }

  void runSerial() override {
    std::vector<double> pos = initialPositions(), vel(3 * n_, 0.0),
                        acc(3 * n_, 0.0);
    for (std::size_t t = 0; t < steps_; ++t) {
      std::fill(acc.begin(), acc.end(), 0.0);
      accumulate(pos, acc, 0, n_, 0, n_);
      integrate(pos, vel, acc, 0, n_);
    }
    refPos_ = std::move(pos);
  }

  void initParallel(std::size_t) override {
    pos_ = initialPositions();
    vel_.assign(3 * n_, 0.0);
    acc_.assign(3 * n_, 0.0);
  }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nb = n_ / bs;
    std::size_t tasks = 0;
    for (std::size_t t = 0; t < steps_; ++t) {
      for (std::size_t bi = 0; bi < nb; ++bi) {
        rt.spawn({out(accTok(bi, bs))}, [this, bi, bs] {
          std::fill(acc_.begin() + static_cast<std::ptrdiff_t>(3 * bi * bs),
                    acc_.begin() + static_cast<std::ptrdiff_t>(3 * (bi + 1) * bs),
                    0.0);
        });
        ++tasks;
      }
      for (std::size_t bi = 0; bi < nb; ++bi) {
        for (std::size_t bj = 0; bj < nb; ++bj) {
          auto body = [this, bi, bj, bs] {
            accumulate(pos_, acc_, bi * bs, (bi + 1) * bs, bj * bs,
                       (bj + 1) * bs);
          };
          if (bi == bj) {
            rt.spawn({in(posTok(bi, bs)), inout(accTok(bi, bs))}, body);
          } else {
            rt.spawn({in(posTok(bj, bs)), in(posTok(bi, bs)),
                      inout(accTok(bi, bs))},
                     body);
          }
          ++tasks;
        }
      }
      for (std::size_t bi = 0; bi < nb; ++bi) {
        rt.spawn({in(accTok(bi, bs)), inout(posTok(bi, bs))}, [this, bi, bs] {
          integrate(pos_, vel_, acc_, bi * bs, (bi + 1) * bs);
        });
        ++tasks;
      }
    }
    rt.taskwait();
    return tasks;
  }

  VerifyResult verify() const override {
    return compare(refPos_, pos_, tolerance());
  }

  void corruptOutput() override { pos_[3 * (n_ / 2)] += 1.0; }

 private:
  std::vector<double> initialPositions() const {
    // Deterministic jittered lattice, 16 particles per row.
    std::vector<double> pos(3 * n_);
    for (std::size_t i = 0; i < n_; ++i) {
      pos[3 * i + 0] = static_cast<double>(i % 16) +
                       0.0625 * static_cast<double>(i % 7);
      pos[3 * i + 1] = static_cast<double>((i / 16) % 16) +
                       0.0625 * static_cast<double>(i % 5);
      pos[3 * i + 2] = static_cast<double>(i / 256) +
                       0.0625 * static_cast<double>(i % 3);
    }
    return pos;
  }

  double& posTok(std::size_t b, std::size_t bs) { return pos_[3 * b * bs]; }
  double& accTok(std::size_t b, std::size_t bs) { return acc_[3 * b * bs]; }

  /// acc[targets i0..i1) += softened gravity from sources [j0..j1).
  static void accumulate(const std::vector<double>& pos,
                         std::vector<double>& acc, std::size_t i0,
                         std::size_t i1, std::size_t j0, std::size_t j1) {
    // Accumulates straight into acc[] per source so the blocked runs
    // reproduce the serial j-ascending association exactly (a per-block
    // register accumulator would regroup the sum and cost bit-exactness).
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = j0; j < j1; ++j) {
        if (i == j) continue;
        const double dx = pos[3 * j + 0] - pos[3 * i + 0];
        const double dy = pos[3 * j + 1] - pos[3 * i + 1];
        const double dz = pos[3 * j + 2] - pos[3 * i + 2];
        const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
        const double inv = 1.0 / (r2 * std::sqrt(r2));
        acc[3 * i + 0] += dx * inv;
        acc[3 * i + 1] += dy * inv;
        acc[3 * i + 2] += dz * inv;
      }
    }
  }

  void integrate(std::vector<double>& pos, std::vector<double>& vel,
                 const std::vector<double>& acc, std::size_t i0,
                 std::size_t i1) const {
    for (std::size_t i = 3 * i0; i < 3 * i1; ++i) {
      vel[i] += kDt * acc[i];
      pos[i] += kDt * vel[i];
    }
  }

  std::size_t n_, steps_;
  std::vector<double> pos_, vel_, acc_, refPos_;
};

}  // namespace

std::unique_ptr<App> makeNbody(AppScale scale) {
  return std::make_unique<NbodyApp>(scale);
}

}  // namespace ats::apps
