// Matmul: blocked dense C = A * B.  One task per (i, j, k) tile triple
// with {in A(i,k), in B(k,j), inout C(i,j)} — the inout chain on each C
// tile serializes its k updates in spawn order, so every C entry
// accumulates over k ascending exactly like the serial ikj loops and the
// answer is bit-exact at every block size (the tolerance is slack, not
// need).  A and B are only ever read, so the reader groups fan out wide.
#include <cstddef>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

class MatmulApp final : public App {
 public:
  explicit MatmulApp(AppScale scale)
      : App("matmul", scale, /*tolerance=*/1e-9),
        n_(scale == AppScale::Full ? 384 : 96) {
    a_.resize(n_ * n_);
    b_.resize(n_ * n_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        a_[i * n_ + j] = static_cast<double>((i + 2 * j) % 13) * 0.125 - 0.5;
        b_[i * n_ + j] = static_cast<double>((3 * i + j) % 11) * 0.0625 - 0.25;
      }
    }
  }

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {192, 128, 96, 64, 48, 32, 24, 16};
    return {48, 32, 24, 16, 12, 8};
  }

  double totalWorkUnits() const override {
    const double n = static_cast<double>(n_);
    return 2.0 * n * n * n;
  }

  void runSerial() override {
    cref_.assign(n_ * n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t k = 0; k < n_; ++k) {
        const double aik = a_[i * n_ + k];
        for (std::size_t j = 0; j < n_; ++j)
          cref_[i * n_ + j] += aik * b_[k * n_ + j];
      }
  }

  void initParallel(std::size_t) override { c_.assign(n_ * n_, 0.0); }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nt = n_ / bs;
    std::size_t tasks = 0;
    for (std::size_t i = 0; i < nt; ++i) {
      for (std::size_t j = 0; j < nt; ++j) {
        for (std::size_t k = 0; k < nt; ++k) {
          rt.spawn({in(tileTok(a_, i, k, bs)), in(tileTok(b_, k, j, bs)),
                    inout(tileTok(c_, i, j, bs))},
                   [this, i, j, k, bs] { gemmTile(i, j, k, bs); });
          ++tasks;
        }
      }
    }
    rt.taskwait();
    return tasks;
  }

  VerifyResult verify() const override {
    return compare(cref_, c_, tolerance());
  }

  void corruptOutput() override { c_[n_ / 2] += 1.0; }

 private:
  /// Dependency token of tile (ti, tj): its top-left element.
  double& tileTok(std::vector<double>& m, std::size_t ti, std::size_t tj,
                  std::size_t bs) {
    return m[(ti * bs) * n_ + tj * bs];
  }

  void gemmTile(std::size_t ti, std::size_t tj, std::size_t tk,
                std::size_t bs) {
    const std::size_t i0 = ti * bs, j0 = tj * bs, k0 = tk * bs;
    for (std::size_t i = i0; i < i0 + bs; ++i)
      for (std::size_t k = k0; k < k0 + bs; ++k) {
        const double aik = a_[i * n_ + k];
        for (std::size_t j = j0; j < j0 + bs; ++j)
          c_[i * n_ + j] += aik * b_[k * n_ + j];
      }
  }

  std::size_t n_;
  std::vector<double> a_, b_, c_, cref_;
};

}  // namespace

std::unique_ptr<App> makeMatmul(AppScale scale) {
  return std::make_unique<MatmulApp>(scale);
}

}  // namespace ats::apps
