// Heat: 2D Jacobi stencil, double-buffered, decomposed into row blocks.
// Each timestep spawns one task per block reading its own and both
// neighbor blocks of the source buffer and writing its block of the
// destination buffer — the classic halo shape whose cross-step wavefront
// the dependency system must pipeline (a block's step t+1 can start as
// soon as its three step-t neighbors finish, no global barrier).
// Per-cell arithmetic is identical at every block size, so the answer is
// bit-exact against the serial sweep.
#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

class HeatApp final : public App {
 public:
  explicit HeatApp(AppScale scale)
      : App("heat", scale, /*tolerance=*/1e-12),
        rows_(scale == AppScale::Full ? 1024 : 256),
        cols_(scale == AppScale::Full ? 512 : 128),
        steps_(scale == AppScale::Full ? 50 : 8) {}

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {256, 128, 64, 32, 16, 8};
    return {64, 32, 16, 8, 4};
  }

  double totalWorkUnits() const override {
    // 4 flops per interior cell update per step.
    return 4.0 * static_cast<double>(steps_) *
           static_cast<double>(rows_ - 2) * static_cast<double>(cols_ - 2);
  }

  void runSerial() override {
    std::vector<double> src = initialGrid(), dst = initialGrid();
    for (std::size_t t = 0; t < steps_; ++t) {
      sweepRows(src, dst, 1, rows_ - 1);
      std::swap(src, dst);
    }
    ref_ = std::move(src);
  }

  void initParallel(std::size_t) override {
    bufA_ = initialGrid();
    bufB_ = initialGrid();
  }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nb = rows_ / bs;
    std::vector<double>* src = &bufA_;
    std::vector<double>* dst = &bufB_;
    for (std::size_t t = 0; t < steps_; ++t) {
      for (std::size_t b = 0; b < nb; ++b) {
        std::array<Access, 4> acc;
        std::size_t na = 0;
        if (b > 0) acc[na++] = in(blockTok(*src, b - 1, bs));
        acc[na++] = in(blockTok(*src, b, bs));
        if (b + 1 < nb) acc[na++] = in(blockTok(*src, b + 1, bs));
        acc[na++] = out(blockTok(*dst, b, bs));
        // Interior rows of this block (the global edge rows are fixed
        // boundary and both buffers carry them from initialization).
        const std::size_t r0 = std::max<std::size_t>(b * bs, 1);
        const std::size_t r1 = std::min((b + 1) * bs, rows_ - 1);
        rt.spawn(std::span<const Access>(acc.data(), na),
                 [this, src, dst, r0, r1] { sweepRows(*src, *dst, r0, r1); });
      }
      std::swap(src, dst);
    }
    rt.taskwait();
    return steps_ * nb;
  }

  VerifyResult verify() const override {
    return compare(ref_, steps_ % 2 == 0 ? bufA_ : bufB_, tolerance());
  }

  void corruptOutput() override {
    (steps_ % 2 == 0 ? bufA_ : bufB_)[rows_ / 2 * cols_ + cols_ / 2] += 1.0;
  }

 private:
  std::vector<double> initialGrid() const {
    std::vector<double> g(rows_ * cols_, 0.0);
    for (std::size_t j = 0; j < cols_; ++j) {
      g[j] = 1.0;                        // hot top edge
      g[(rows_ - 1) * cols_ + j] = 0.5;  // warm bottom edge
    }
    for (std::size_t i = 0; i < rows_; ++i) {
      g[i * cols_] = 0.75;
      g[i * cols_ + cols_ - 1] = 0.25;
    }
    return g;
  }

  double& blockTok(std::vector<double>& buf, std::size_t b, std::size_t bs) {
    return buf[b * bs * cols_];
  }

  void sweepRows(const std::vector<double>& src, std::vector<double>& dst,
                 std::size_t r0, std::size_t r1) const {
    for (std::size_t i = r0; i < r1; ++i)
      for (std::size_t j = 1; j < cols_ - 1; ++j)
        dst[i * cols_ + j] =
            0.25 * (src[(i - 1) * cols_ + j] + src[(i + 1) * cols_ + j] +
                    src[i * cols_ + j - 1] + src[i * cols_ + j + 1]);
  }

  std::size_t rows_, cols_, steps_;
  std::vector<double> bufA_, bufB_, ref_;
};

}  // namespace

std::unique_ptr<App> makeHeat(AppScale scale) {
  return std::make_unique<HeatApp>(scale);
}

}  // namespace ats::apps
