// Dot Product: the paper set's embarrassingly-parallel kernel with a
// final reduction.  One task per block computes a partial sum (no
// conflicting accesses at all), then an inout chain on the accumulator
// folds the partials in block order — so the dependency system sees the
// two extreme shapes at once: total independence and a strict chain.
//
// The block grouping changes the floating-point association relative to
// the serial left-to-right sum, hence the reduction-class tolerance.
#include <cstddef>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

class DotprodApp final : public App {
 public:
  explicit DotprodApp(AppScale scale)
      : App("dotprod", scale, /*tolerance=*/1e-9),
        n_(scale == AppScale::Full ? (std::size_t{1} << 24)
                                   : (std::size_t{1} << 18)) {
    a_.resize(n_);
    b_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      a_[i] = 0.25 + static_cast<double>(i % 9) * 0.125;
      b_[i] = 1.0 - static_cast<double>(i % 7) * 0.0625;
    }
  }

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full)
      return {1u << 20, 1u << 18, 1u << 16, 1u << 14, 1u << 12};
    return {65536, 32768, 16384, 8192, 4096, 2048, 1024};
  }

  double totalWorkUnits() const override {
    return 2.0 * static_cast<double>(n_);  // one mul + one add per element
  }

  void runSerial() override {
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) sum += a_[i] * b_[i];
    serialSum_ = sum;
  }

  void initParallel(std::size_t blockSize) override {
    partials_.assign(n_ / blockSize, 0.0);
    parallelSum_ = 0.0;
  }

  std::size_t runParallel(Runtime& rt, std::size_t blockSize) override {
    const std::size_t nb = n_ / blockSize;
    for (std::size_t t = 0; t < nb; ++t) {
      rt.spawn({out(partials_[t])}, [this, t, blockSize] {
        const std::size_t begin = t * blockSize;
        double sum = 0.0;
        for (std::size_t i = begin; i < begin + blockSize; ++i)
          sum += a_[i] * b_[i];
        partials_[t] = sum;
      });
    }
    for (std::size_t t = 0; t < nb; ++t) {
      rt.spawn({in(partials_[t]), inout(parallelSum_)},
               [this, t] { parallelSum_ += partials_[t]; });
    }
    rt.taskwait();
    return 2 * nb;
  }

  VerifyResult verify() const override {
    return compare({serialSum_}, {parallelSum_}, tolerance());
  }

  void corruptOutput() override { parallelSum_ += 1.0; }

 private:
  std::size_t n_;
  std::vector<double> a_, b_;
  double serialSum_ = 0.0;
  std::vector<double> partials_;
  double parallelSum_ = 0.0;
};

}  // namespace

std::unique_ptr<App> makeDotprod(AppScale scale) {
  return std::make_unique<DotprodApp>(scale);
}

}  // namespace ats::apps
