#include "apps/app.hpp"

#include <cmath>
#include <stdexcept>

#include "app_factory.hpp"
#include "common/timing.hpp"

namespace ats {

AppResult App::run(Runtime& rt, std::size_t blockSize) {
  ensureSerial();
  initParallel(blockSize);
  Stopwatch sw;
  const std::size_t tasks = runParallel(rt, blockSize);
  const double seconds = sw.elapsedSeconds();

  const VerifyResult v = verify();
  AppResult result;
  result.verified = v.ok;
  result.checksum = v.checksum;
  result.maxRelError = v.maxRelError;
  result.seconds = seconds;
  result.workUnits = totalWorkUnits();
  result.tasks = tasks;
  return result;
}

void App::ensureSerial() {
  if (serialDone_) return;
  runSerial();
  serialDone_ = true;
}

VerifyResult App::compare(const std::vector<double>& reference,
                          const std::vector<double>& output,
                          double tolerance) {
  VerifyResult v;
  v.ok = reference.size() == output.size() && !reference.empty();
  for (std::size_t i = 0; i < output.size(); ++i) {
    v.checksum += output[i];
    if (i >= reference.size()) break;
    const double denom = std::max(1.0, std::fabs(reference[i]));
    const double rel = std::fabs(output[i] - reference[i]) / denom;
    if (rel > v.maxRelError) v.maxRelError = rel;
    // Negated comparison so a NaN anywhere (output or reference) fails
    // instead of slipping through an always-false `rel > tolerance`.
    if (!(rel <= tolerance)) v.ok = false;
  }
  return v;
}

std::unique_ptr<App> makeApp(const std::string& name, AppScale scale) {
  if (name == "dotprod") return apps::makeDotprod(scale);
  if (name == "matmul") return apps::makeMatmul(scale);
  if (name == "heat") return apps::makeHeat(scale);
  if (name == "nbody") return apps::makeNbody(scale);
  if (name == "cholesky") return apps::makeCholesky(scale);
  if (name == "hpccg") return apps::makeHpccg(scale);
  if (name == "lulesh") return apps::makeLulesh(scale);
  if (name == "miniamr") return apps::makeMiniamr(scale);
  throw std::invalid_argument("ats::makeApp: unknown app \"" + name +
                              "\" (see ats::appNames())");
}

const std::vector<std::string>& appNames() {
  static const std::vector<std::string> names = {
      "dotprod", "matmul", "heat",  "nbody",
      "cholesky", "hpccg", "lulesh", "miniamr"};
  return names;
}

}  // namespace ats
