// LULESH proxy: a compact Lagrangian-hydrodynamics surrogate with the
// multi-kernel-per-timestep structure of the real miniapp, on a 1D
// staggered grid (element pressure/energy, node velocity).  Each step is
// two alternating halo phases — node kernels read flanking element
// blocks, element kernels read flanking node blocks — so the dependency
// pattern ping-pongs between two offset block grids instead of the
// single aligned grid of heat, with an artificial-viscosity branch for
// shock capture (a Sod-like initial energy jump drives one through the
// domain).  Per-cell arithmetic is block-size independent: bit-exact.
#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

constexpr double kDt = 0.05;
constexpr double kGammaMinusOne = 0.4;  // ideal gas, gamma = 1.4
constexpr double kViscosity = 1.5;      // artificial-viscosity coefficient

class LuleshApp final : public App {
 public:
  explicit LuleshApp(AppScale scale)
      : App("lulesh", scale, /*tolerance=*/1e-12),
        elems_(scale == AppScale::Full ? 65536 : 8192),
        steps_(scale == AppScale::Full ? 20 : 10) {}

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {8192, 4096, 2048, 1024, 512, 256};
    return {2048, 1024, 512, 256, 128};
  }

  double totalWorkUnits() const override {
    // ~8 flops per element kernel + ~4 per node kernel, per step.
    return 12.0 * static_cast<double>(steps_) * static_cast<double>(elems_);
  }

  void runSerial() override {
    std::vector<double> e = initialEnergy(), p = pressureOf(e),
                        u(elems_ + 1, 0.0);
    for (std::size_t t = 0; t < steps_; ++t) {
      nodeKernel(p, u, 1, elems_);
      elemKernel(u, e, p, 0, elems_);
    }
    refE_ = std::move(e);
    refU_ = std::move(u);
  }

  void initParallel(std::size_t) override {
    e_ = initialEnergy();
    p_ = pressureOf(e_);
    u_.assign(elems_ + 1, 0.0);
  }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nb = elems_ / bs;
    std::size_t tasks = 0;
    for (std::size_t t = 0; t < steps_; ++t) {
      // Phase 1 — node velocities from the element pressure gradient.
      // Node block k owns nodes [k*bs, (k+1)*bs) (the last block also
      // owns the far-wall node); interior nodes need elements n-1 and n,
      // i.e. element blocks k-1 and k.
      for (std::size_t k = 0; k < nb; ++k) {
        std::array<Access, 3> acc;
        std::size_t na = 0;
        if (k > 0) acc[na++] = in(p_[(k - 1) * bs]);
        acc[na++] = in(p_[k * bs]);
        acc[na++] = inout(u_[k * bs]);
        const std::size_t n0 = std::max<std::size_t>(k * bs, 1);
        const std::size_t n1 = (k + 1) * bs;  // node `elems_` is a wall
        rt.spawn(std::span<const Access>(acc.data(), na),
                 [this, n0, n1] { nodeKernel(p_, u_, n0, n1); });
        ++tasks;
      }
      // Phase 2 — element energy + EOS from the node velocity field.
      // Element block k needs nodes [k*bs, (k+1)*bs], i.e. node blocks
      // k and k+1 (the closing node of the last block lives in node
      // block nb-1 itself).
      for (std::size_t k = 0; k < nb; ++k) {
        std::array<Access, 3> acc;
        std::size_t na = 0;
        acc[na++] = in(u_[k * bs]);
        if (k + 1 < nb) acc[na++] = in(u_[(k + 1) * bs]);
        acc[na++] = inout(p_[k * bs]);
        rt.spawn(std::span<const Access>(acc.data(), na), [this, k, bs] {
          elemKernel(u_, e_, p_, k * bs, (k + 1) * bs);
        });
        ++tasks;
      }
    }
    rt.taskwait();
    return tasks;
  }

  VerifyResult verify() const override {
    const VerifyResult ve = compare(refE_, e_, tolerance());
    const VerifyResult vu = compare(refU_, u_, tolerance());
    VerifyResult v;
    v.ok = ve.ok && vu.ok;
    v.checksum = ve.checksum + vu.checksum;
    v.maxRelError = std::max(ve.maxRelError, vu.maxRelError);
    return v;
  }

  void corruptOutput() override { e_[elems_ / 2] += 1.0; }

 private:
  std::vector<double> initialEnergy() const {
    // Sod-like jump: hot dense-energy left half, cold right half.
    std::vector<double> e(elems_);
    for (std::size_t i = 0; i < elems_; ++i)
      e[i] = i < elems_ / 2 ? 1.0 : 0.025;
    return e;
  }

  std::vector<double> pressureOf(const std::vector<double>& e) const {
    std::vector<double> p(elems_);
    for (std::size_t i = 0; i < elems_; ++i) p[i] = kGammaMinusOne * e[i];
    return p;
  }

  /// u[n0..n1) += dt * (p[left] - p[right]); walls (nodes 0 and elems_)
  /// never move, callers exclude them.
  void nodeKernel(const std::vector<double>& p, std::vector<double>& u,
                  std::size_t n0, std::size_t n1) const {
    for (std::size_t n = n0; n < n1; ++n) u[n] += kDt * (p[n - 1] - p[n]);
  }

  /// Element energy update (pdV work + artificial viscosity on
  /// compression) followed by the ideal-gas EOS refresh.
  void elemKernel(const std::vector<double>& u, std::vector<double>& e,
                  std::vector<double>& p, std::size_t e0,
                  std::size_t e1) const {
    for (std::size_t i = e0; i < e1; ++i) {
      const double du = u[i + 1] - u[i];
      const double q = du < 0.0 ? kViscosity * du * du : 0.0;
      e[i] -= kDt * (p[i] + q) * du;
      if (e[i] < 0.0) e[i] = 0.0;
      p[i] = kGammaMinusOne * e[i];
    }
  }

  std::size_t elems_, steps_;
  std::vector<double> e_, p_, u_, refE_, refU_;
};

}  // namespace

std::unique_ptr<App> makeLulesh(AppScale scale) {
  return std::make_unique<LuleshApp>(scale);
}

}  // namespace ats::apps
