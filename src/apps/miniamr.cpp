// miniAMR proxy: adaptive-refinement workload shape.  A 1D field is
// smoothed in double-buffered cycles like heat, but cells near a moving
// front carry a refinement level (0-2) decided per fixed 256-cell region
// from the cell index and cycle alone — NOT from the task blocking — so
// the answer is block-size independent while the work per task varies by
// up to 16x and shifts between tasks every cycle.  That irregular grain
// plus the halo dependencies is what floods the scheduler with uneven
// fine tasks (fig10 runs this app at the finest block size).
#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "app_factory.hpp"
#include "runtime/runtime.hpp"

namespace ats::apps {
namespace {

/// Cells per refinement region — the unit refinement decisions apply to,
/// fixed so levels never depend on the sweep's block size.
constexpr std::size_t kRegionCells = 256;

class MiniamrApp final : public App {
 public:
  explicit MiniamrApp(AppScale scale)
      : App("miniamr", scale, /*tolerance=*/1e-12),
        n_(scale == AppScale::Full ? 65536 : 8192),
        cycles_(scale == AppScale::Full ? 12 : 6) {
    // Work is data-dependent (the refinement map), so price it once.
    workUnits_ = 0.0;
    for (std::size_t c = 0; c < cycles_; ++c)
      for (std::size_t i = 0; i < n_; ++i)
        workUnits_ += 3.0 + static_cast<double>(refineIters(i, c));
  }

  std::vector<std::size_t> defaultBlockSizes() const override {
    if (scale() == AppScale::Full) return {8192, 4096, 2048, 1024, 512, 256};
    return {2048, 1024, 512, 256, 128, 64};
  }

  double totalWorkUnits() const override { return workUnits_; }

  void runSerial() override {
    std::vector<double> src = initialField(), dst(n_, 0.0);
    for (std::size_t c = 0; c < cycles_; ++c) {
      updateCells(src, dst, 0, n_, c);
      std::swap(src, dst);
    }
    ref_ = std::move(src);
  }

  void initParallel(std::size_t) override {
    bufA_ = initialField();
    bufB_.assign(n_, 0.0);
  }

  std::size_t runParallel(Runtime& rt, std::size_t bs) override {
    const std::size_t nb = n_ / bs;
    std::vector<double>* src = &bufA_;
    std::vector<double>* dst = &bufB_;
    for (std::size_t c = 0; c < cycles_; ++c) {
      for (std::size_t b = 0; b < nb; ++b) {
        std::array<Access, 4> acc;
        std::size_t na = 0;
        if (b > 0) acc[na++] = in((*src)[(b - 1) * bs]);
        acc[na++] = in((*src)[b * bs]);
        if (b + 1 < nb) acc[na++] = in((*src)[(b + 1) * bs]);
        acc[na++] = out((*dst)[b * bs]);
        rt.spawn(std::span<const Access>(acc.data(), na),
                 [this, src, dst, b, bs, c] {
                   updateCells(*src, *dst, b * bs, (b + 1) * bs, c);
                 });
      }
      std::swap(src, dst);
    }
    rt.taskwait();
    return cycles_ * nb;
  }

  VerifyResult verify() const override {
    return compare(ref_, cycles_ % 2 == 0 ? bufA_ : bufB_, tolerance());
  }

  void corruptOutput() override {
    (cycles_ % 2 == 0 ? bufA_ : bufB_)[n_ / 3] += 1.0;
  }

 private:
  std::vector<double> initialField() const {
    std::vector<double> f(n_);
    for (std::size_t i = 0; i < n_; ++i)
      f[i] = static_cast<double>(i % 97) * 0.01;
    return f;
  }

  /// Refinement level of `cell` at `cycle`: a front sweeps left to right
  /// across the domain; the region under it refines to level 2, the ones
  /// flanking it to level 1.
  std::size_t refineIters(std::size_t cell, std::size_t cycle) const {
    const std::size_t region = cell / kRegionCells;
    const std::size_t frontCell = ((cycle + 1) * n_) / (cycles_ + 1);
    const std::size_t frontRegion = frontCell / kRegionCells;
    const std::size_t dist = region > frontRegion ? region - frontRegion
                                                  : frontRegion - region;
    const std::size_t level = dist == 0 ? 2 : (dist <= 2 ? 1 : 0);
    return std::size_t{1} << (2 * level);  // 1, 4 or 16 extra iterations
  }

  void updateCells(const std::vector<double>& src, std::vector<double>& dst,
                   std::size_t begin, std::size_t end, std::size_t cycle) const {
    for (std::size_t i = begin; i < end; ++i) {
      const double left = i > 0 ? src[i - 1] : src[i];
      const double right = i + 1 < n_ ? src[i + 1] : src[i];
      double v = 0.25 * left + 0.5 * src[i] + 0.25 * right;
      // Refined cells iterate a cheap contraction toward 1 — extra work
      // AND a (deterministic) extra effect where the front sits.
      const std::size_t iters = refineIters(i, cycle);
      for (std::size_t k = 0; k < iters; ++k) v += (1.0 - v) * 1e-3;
      dst[i] = v;
    }
  }

  std::size_t n_, cycles_;
  double workUnits_ = 0.0;
  std::vector<double> bufA_, bufB_, ref_;
};

}  // namespace

std::unique_ptr<App> makeMiniamr(AppScale scale) {
  return std::make_unique<MiniamrApp>(scale);
}

}  // namespace ats::apps
