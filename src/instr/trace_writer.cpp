#include "instr/trace_writer.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace ats {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool TraceWriter::writeBinary(const std::string& path,
                              const std::vector<TraceRecord>& records) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;

  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(header.magic));
  header.version = kVersion;
  header.recordBytes = sizeof(TraceRecord);
  header.recordCount = records.size();
  if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1) return false;
  if (!records.empty() &&
      std::fwrite(records.data(), sizeof(TraceRecord), records.size(),
                  file.get()) != records.size()) {
    return false;
  }
  return std::fflush(file.get()) == 0;
}

bool TraceWriter::readBinary(const std::string& path,
                             std::vector<TraceRecord>& out) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return false;

  BinaryHeader header{};
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) return false;
  if (std::memcmp(header.magic, kMagic, sizeof(header.magic)) != 0 ||
      header.version != kVersion ||
      header.recordBytes != sizeof(TraceRecord)) {
    return false;
  }
  // The count must agree with what is physically in the file BEFORE it
  // sizes an allocation: a truncated or bit-flipped header would
  // otherwise turn "return false" into a multi-exabyte bad_alloc.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) return false;
  const long fileSize = std::ftell(file.get());
  if (fileSize < static_cast<long>(sizeof(BinaryHeader))) return false;
  const unsigned long long bodyBytes =
      static_cast<unsigned long long>(fileSize) - sizeof(BinaryHeader);
  if (bodyBytes % sizeof(TraceRecord) != 0 ||
      bodyBytes / sizeof(TraceRecord) != header.recordCount) {
    return false;
  }
  if (std::fseek(file.get(), sizeof(BinaryHeader), SEEK_SET) != 0)
    return false;
  std::vector<TraceRecord> records(header.recordCount);
  if (header.recordCount != 0 &&
      std::fread(records.data(), sizeof(TraceRecord), records.size(),
                 file.get()) != records.size()) {
    return false;
  }
  out = std::move(records);
  return true;
}

std::string TraceWriter::renderText(const std::vector<TraceRecord>& records) {
  std::string text;
  text.reserve(records.size() * 64);
  char line[128];
  for (const TraceRecord& r : records) {
    std::snprintf(line, sizeof(line), "%12llu ns  s%02u  %-18s  %llu\n",
                  static_cast<unsigned long long>(r.timeNs),
                  static_cast<unsigned>(r.stream), eventName(r.event),
                  static_cast<unsigned long long>(r.payload));
    text += line;
  }
  return text;
}

bool TraceWriter::writeText(const std::string& path,
                            const std::vector<TraceRecord>& records) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  const std::string text = renderText(records);
  if (!text.empty() &&
      std::fwrite(text.data(), 1, text.size(), file.get()) != text.size()) {
    return false;
  }
  return std::fflush(file.get()) == 0;
}

}  // namespace ats
