#include "instr/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ats {

Tracer::Tracer(std::size_t numCpuStreams, std::size_t capacityPerStream)
    : numCpuStreams_(numCpuStreams),
      numStreams_(numCpuStreams + kAuxStreams),
      capacity_(static_cast<std::uint32_t>(capacityPerStream)),
      streams_(std::make_unique<Stream[]>(numCpuStreams + kAuxStreams)),
      tscEpoch_(tscNow()),
      nsEpoch_(nowNanos()) {
  // Checked in release builds too (the Runtime::submit idiom): a
  // capacity the 32-bit head cannot index would silently truncate —
  // worst case to 0, turning every emit into a drop with no error
  // anywhere — and a stream count past 16 bits would alias serialized
  // stream ids.  Misconfigured tracers fail loudly instead.
  if (capacityPerStream == 0 ||
      capacityPerStream > (std::size_t{1} << 31) ||
      numStreams_ >= (std::size_t{1} << 16)) {
    std::fprintf(stderr,
                 "ats::Tracer: %zu streams x %zu records/stream is outside "
                 "the format's limits (streams < 65536, 0 < capacity <= "
                 "2^31)\n",
                 numStreams_, capacityPerStream);
    std::abort();
  }
  for (std::size_t s = 0; s < numStreams(); ++s) {
    streams_[s].records = std::make_unique<TraceRecord[]>(capacity_);
  }
}

std::vector<TraceRecord> Tracer::collect() const {
  // Calibrate ticks -> ns over the tracer's own lifetime: the two
  // (tsc, ns) sample pairs bracket every record, so the linear rescale
  // needs no machine-specific TSC frequency table.  Degenerate spans
  // (collect immediately after construction, or the nowNanos fallback
  // where ticks already are ns) rescale 1:1.
  const std::uint64_t tscEnd = tscNow();
  const std::uint64_t nsEnd = nowNanos();
  const double nsPerTick =
      (tscEnd > tscEpoch_ && nsEnd > nsEpoch_)
          ? static_cast<double>(nsEnd - nsEpoch_) /
                static_cast<double>(tscEnd - tscEpoch_)
          : 1.0;

  std::vector<TraceRecord> merged;
  std::size_t total = 0;
  for (std::size_t s = 0; s < numStreams(); ++s)
    total += streams_[s].head.load(std::memory_order_acquire);
  merged.reserve(total);

  for (std::size_t s = 0; s < numStreams(); ++s) {
    const Stream& stream = streams_[s];
    // The acquire pairs with emit's release store: every record below
    // the published head is fully written.
    const std::uint32_t n = stream.head.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      TraceRecord r = stream.records[i];
      r.timeNs = r.timeNs >= tscEpoch_
                     ? static_cast<std::uint64_t>(
                           static_cast<double>(r.timeNs - tscEpoch_) *
                           nsPerTick)
                     : 0;
      merged.push_back(r);
    }
  }
  // Stable so same-timestamp records keep their per-stream program
  // order (coarse fallback clocks and sub-tick bursts produce ties).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.timeNs < b.timeNs;
                   });
  return merged;
}

void Tracer::reset() {
  for (std::size_t s = 0; s < numStreams(); ++s) {
    streams_[s].head.store(0, std::memory_order_release);
    streams_[s].drops.store(0, std::memory_order_relaxed);
  }
  misdirected_.store(0, std::memory_order_relaxed);
  tscEpoch_ = tscNow();
  nsEpoch_ = nowNanos();
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = misdirected_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < numStreams(); ++s) {
    const std::uint64_t drops =
        streams_[s].drops.load(std::memory_order_relaxed);
    if (drops > ~std::uint64_t{0} - total) return ~std::uint64_t{0};
    total += drops;
  }
  return total;
}

}  // namespace ats
