#include "instr/noise_injector.hpp"

#include <chrono>

#include "common/timing.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ats {

namespace {

/// Best-effort pin, mirroring the runtime's worker pinning: sharing the
/// target worker's core is the whole point (the burst must displace it),
/// but a host that refuses affinity still produces usable noise — the
/// scheduler will put the burner *somewhere*, and on a loaded box that
/// still preempts workers.
void pinTo(std::size_t cpu) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

KernelNoiseInjector::KernelNoiseInjector(Tracer& tracer,
                                         std::uint64_t periodUs,
                                         std::uint64_t burstUs,
                                         std::size_t targetCpu)
    : tracer_(tracer),
      periodUs_(periodUs > burstUs ? periodUs : burstUs + 1),
      burstUs_(burstUs),
      targetCpu_(targetCpu),
      thread_([this] { run(); }) {}

KernelNoiseInjector::~KernelNoiseInjector() { stop(); }

void KernelNoiseInjector::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void KernelNoiseInjector::run() {
  pinTo(targetCpu_);
  const std::size_t stream = tracer_.kernelStream();
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(periodUs_ - burstUs_));
    if (stop_.load(std::memory_order_acquire)) break;
    tracer_.emit(stream, TraceEvent::KernelIrqEnter, targetCpu_);
    // Burn, never yield: an interrupt handler does not cpuRelax() or
    // sleep, and any politeness here would hand the core back to the
    // worker we are supposed to be displacing.
    const std::uint64_t until = nowNanos() + burstUs_ * 1000;
    while (nowNanos() < until) {
    }
    tracer_.emit(stream, TraceEvent::KernelIrqExit, targetCpu_);
    bursts_.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace ats
