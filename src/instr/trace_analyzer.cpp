#include "instr/trace_analyzer.hpp"

#include <algorithm>
#include <cstdio>

namespace ats {

namespace {

constexpr double kNsPerUs = 1000.0;

bool timeBefore(const TraceRecord& a, const TraceRecord& b) {
  return a.timeNs < b.timeNs;
}

/// View of `records` in timestamp order.  The common producer
/// (Tracer::collect / a written trace thereof) is already sorted, so
/// the usual cost is one O(n) is_sorted scan and no copy; only
/// hand-built or spliced record sets pay the copy + stable_sort into
/// `storage`.
const std::vector<TraceRecord>& sortedView(
    const std::vector<TraceRecord>& records,
    std::vector<TraceRecord>& storage) {
  if (std::is_sorted(records.begin(), records.end(), timeBefore))
    return records;
  storage = records;
  std::stable_sort(storage.begin(), storage.end(), timeBefore);
  return storage;
}

struct IrqInterval {
  std::uint64_t beginNs;
  std::uint64_t endNs;
};

/// Pair KernelIrqEnter..Exit sequentially per stream; an unclosed Enter
/// extends to the end of the trace (the displaced thread never saw the
/// burst finish inside the traced window).
std::vector<IrqInterval> irqIntervals(const std::vector<TraceRecord>& sorted,
                                      std::uint64_t traceEndNs) {
  std::vector<IrqInterval> intervals;
  // Keyed by stream so two injectors on distinct kernel-side streams
  // cannot cross-close each other's bursts.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> open;
  for (const TraceRecord& r : sorted) {
    if (r.event == TraceEvent::KernelIrqEnter) {
      open.emplace_back(r.stream, r.timeNs);
    } else if (r.event == TraceEvent::KernelIrqExit) {
      for (std::size_t i = open.size(); i-- > 0;) {
        if (open[i].first == r.stream) {
          intervals.push_back({open[i].second, r.timeNs});
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  for (const auto& [stream, beginNs] : open)
    intervals.push_back({beginNs, traceEndNs});
  return intervals;
}

bool overlaps(std::uint64_t aBegin, std::uint64_t aEnd,
              const IrqInterval& irq) {
  return aBegin < irq.endNs && irq.beginNs < aEnd;
}

enum class WorkerInterval { Idle, Busy };

/// The one idle/busy interval pairing used by BOTH the statistics and
/// the timeline, so the two renderings cannot drift apart: Begin/Start
/// opens, End closes, and an interval still open at the trace edge is
/// reported up to `traceEndNs` with closed=false (a starved worker's
/// final IdleBegin must count; an unclosed TaskStart is charged as busy
/// time but not as a completed task).
template <typename Fn>
void forEachWorkerInterval(const std::vector<TraceRecord>& sorted,
                           std::size_t numThreads, std::uint64_t traceEndNs,
                           Fn&& fn) {
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  std::vector<std::uint64_t> idleSince(numThreads, kNever);
  std::vector<std::uint64_t> busySince(numThreads, kNever);
  for (const TraceRecord& r : sorted) {
    if (r.stream >= numThreads) continue;
    switch (r.event) {
      case TraceEvent::WorkerIdleBegin:
        idleSince[r.stream] = r.timeNs;
        break;
      case TraceEvent::WorkerIdleEnd:
        if (idleSince[r.stream] != kNever) {
          fn(r.stream, WorkerInterval::Idle, idleSince[r.stream], r.timeNs,
             true);
          idleSince[r.stream] = kNever;
        }
        break;
      case TraceEvent::TaskStart:
        busySince[r.stream] = r.timeNs;
        break;
      case TraceEvent::TaskEnd:
      // A throwing body's interval is REAL busy time — the worker was
      // executing until the throw — so TaskFailed closes the span
      // exactly like TaskEnd (the failure accounting itself happens in
      // the counter pass, not here).
      case TraceEvent::TaskFailed:
        if (busySince[r.stream] != kNever) {
          fn(r.stream, WorkerInterval::Busy, busySince[r.stream], r.timeNs,
             true);
          busySince[r.stream] = kNever;
        }
        break;
      default:
        break;
    }
  }
  for (std::size_t t = 0; t < numThreads; ++t) {
    if (idleSince[t] != kNever)
      fn(static_cast<std::uint16_t>(t), WorkerInterval::Idle, idleSince[t],
         traceEndNs, false);
    if (busySince[t] != kNever)
      fn(static_cast<std::uint16_t>(t), WorkerInterval::Busy, busySince[t],
         traceEndNs, false);
  }
}

}  // namespace

TraceAnalysis analyzeTrace(const std::vector<TraceRecord>& records,
                           std::size_t numThreads) {
  TraceAnalysis analysis;
  analysis.threads.resize(numThreads);
  analysis.recordCount = records.size();
  if (records.empty()) return analysis;

  std::vector<TraceRecord> sortStorage;
  const std::vector<TraceRecord>& sorted = sortedView(records, sortStorage);
  const std::uint64_t t0 = sorted.front().timeNs;
  const std::uint64_t t1 = sorted.back().timeNs;
  analysis.spanUs = static_cast<double>(t1 - t0) / kNsPerUs;

  std::vector<std::uint64_t> serveTimes;
  for (const TraceRecord& r : sorted) {
    switch (r.event) {
      case TraceEvent::SchedServe:
        ++analysis.serveCount;
        // v3 payload: packed local/remote hand-off counts.
        analysis.servedTasksLocal += serveLocalCount(r.payload);
        analysis.servedTasksRemote += serveRemoteCount(r.payload);
        serveTimes.push_back(r.timeNs);
        break;
      case TraceEvent::SchedDrain:
        ++analysis.drainCount;
        analysis.drainedTasks += r.payload;
        break;
      case TraceEvent::SchedLockContended:
        ++analysis.contendedCount;
        break;
      case TraceEvent::SchedSteal:
        ++analysis.stealCount;
        // Per-thread attribution covers worker streams only; the
        // spawner's steals (stream == numThreads) still count in the
        // total above.
        if (r.stream < numThreads) ++analysis.threads[r.stream].steals;
        break;
      case TraceEvent::TaskStart:
        ++analysis.taskStartCount;
        break;
      case TraceEvent::TaskFailed:
        ++analysis.taskFailedCount;
        break;
      case TraceEvent::TaskSkipped:
        ++analysis.taskSkippedCount;
        break;
      case TraceEvent::GraphCancelled:
        ++analysis.graphCancelledCount;
        break;
      default:
        break;
    }
  }
  analysis.servedTasks =
      analysis.servedTasksLocal + analysis.servedTasksRemote;
  if (analysis.servedTasks > 0) {
    analysis.crossServeRatio =
        static_cast<double>(analysis.servedTasksRemote) /
        static_cast<double>(analysis.servedTasks);
  }
  if (analysis.taskStartCount > 0) {
    analysis.stealRatio = static_cast<double>(analysis.stealCount) /
                          static_cast<double>(analysis.taskStartCount);
  }
  forEachWorkerInterval(
      sorted, numThreads, t1,
      [&](std::uint16_t stream, WorkerInterval kind, std::uint64_t beginNs,
          std::uint64_t endNs, bool closed) {
        ThreadTraceStats& thread = analysis.threads[stream];
        const double us = static_cast<double>(endNs - beginNs) / kNsPerUs;
        if (kind == WorkerInterval::Idle) {
          thread.idleUs += us;
        } else {
          thread.busyUs += us;
          if (closed) ++thread.tasksExecuted;
        }
      });
  for (std::size_t t = 0; t < numThreads; ++t) {
    analysis.threads[t].idlePct =
        analysis.spanUs > 0
            ? 100.0 * analysis.threads[t].idleUs / analysis.spanUs
            : 0;
    analysis.meanIdlePct += analysis.threads[t].idlePct;
  }
  if (numThreads > 0)
    analysis.meanIdlePct /= static_cast<double>(numThreads);

  const std::vector<IrqInterval> irqs = irqIntervals(sorted, t1);
  analysis.irqCount = irqs.size();
  for (const IrqInterval& irq : irqs)
    analysis.irqTotalUs +=
        static_cast<double>(irq.endNs - irq.beginNs) / kNsPerUs;

  // Serve gaps: consecutive SchedServe pairs only.  The trace edges are
  // excluded deliberately — before the first serve the scheduler may
  // simply have had no delegation traffic yet, which is not starvation.
  for (std::size_t i = 1; i < serveTimes.size(); ++i) {
    const std::uint64_t gapBegin = serveTimes[i - 1];
    const std::uint64_t gapEnd = serveTimes[i];
    const double gapUs = static_cast<double>(gapEnd - gapBegin) / kNsPerUs;
    analysis.maxServeGapUs = std::max(analysis.maxServeGapUs, gapUs);
    for (const IrqInterval& irq : irqs) {
      if (overlaps(gapBegin, gapEnd, irq)) {
        analysis.maxServeGapDuringIrqUs =
            std::max(analysis.maxServeGapDuringIrqUs, gapUs);
        break;
      }
    }
  }
  return analysis;
}

std::string formatAnalysis(const TraceAnalysis& analysis) {
  std::string text;
  char line[224];
  std::snprintf(line, sizeof(line),
                "span=%.1fus events=%llu threads=%zu mean_idle=%.1f%%\n",
                analysis.spanUs,
                static_cast<unsigned long long>(analysis.recordCount),
                analysis.threads.size(), analysis.meanIdlePct);
  text += line;
  for (std::size_t t = 0; t < analysis.threads.size(); ++t) {
    const ThreadTraceStats& thread = analysis.threads[t];
    std::snprintf(line, sizeof(line),
                  "  cpu%02zu: tasks=%llu steals=%llu busy=%.1fus "
                  "idle=%.1fus (%.1f%% starved)\n",
                  t, static_cast<unsigned long long>(thread.tasksExecuted),
                  static_cast<unsigned long long>(thread.steals),
                  thread.busyUs, thread.idleUs, thread.idlePct);
    text += line;
  }
  std::snprintf(line, sizeof(line),
                "  serves=%llu served_tasks=%llu (local=%llu remote=%llu) "
                "drains=%llu drained_tasks=%llu contended=%llu\n",
                static_cast<unsigned long long>(analysis.serveCount),
                static_cast<unsigned long long>(analysis.servedTasks),
                static_cast<unsigned long long>(analysis.servedTasksLocal),
                static_cast<unsigned long long>(analysis.servedTasksRemote),
                static_cast<unsigned long long>(analysis.drainCount),
                static_cast<unsigned long long>(analysis.drainedTasks),
                static_cast<unsigned long long>(analysis.contendedCount));
  text += line;
  std::snprintf(line, sizeof(line),
                "  steals=%llu task_starts=%llu steal_ratio=%.1f%% "
                "cross_serve=%.1f%%\n",
                static_cast<unsigned long long>(analysis.stealCount),
                static_cast<unsigned long long>(analysis.taskStartCount),
                100.0 * analysis.stealRatio,
                100.0 * analysis.crossServeRatio);
  text += line;
  std::snprintf(line, sizeof(line),
                "  failed=%llu skipped=%llu cancellations=%llu\n",
                static_cast<unsigned long long>(analysis.taskFailedCount),
                static_cast<unsigned long long>(analysis.taskSkippedCount),
                static_cast<unsigned long long>(
                    analysis.graphCancelledCount));
  text += line;
  std::snprintf(line, sizeof(line),
                "  max_serve_gap=%.1fus max_serve_gap_during_irq=%.1fus "
                "irq_total=%.1fus (irqs=%llu)\n",
                analysis.maxServeGapUs, analysis.maxServeGapDuringIrqUs,
                analysis.irqTotalUs,
                static_cast<unsigned long long>(analysis.irqCount));
  text += line;
  return text;
}

std::string renderTimeline(const std::vector<TraceRecord>& records,
                           std::size_t numThreads) {
  constexpr std::size_t kCols = 72;
  if (records.empty()) return "(empty trace)\n";

  std::vector<TraceRecord> sortStorage;
  const std::vector<TraceRecord>& sorted = sortedView(records, sortStorage);
  const std::uint64_t t0 = sorted.front().timeNs;
  const std::uint64_t t1 = sorted.back().timeNs;
  const std::uint64_t span = t1 > t0 ? t1 - t0 : 1;

  std::vector<std::string> rows(numThreads + 1, std::string(kCols, ' '));
  std::string& kernelRow = rows[numThreads];

  const auto colOf = [&](std::uint64_t timeNs) {
    return std::min(kCols - 1,
                    static_cast<std::size_t>(
                        static_cast<double>(timeNs - t0) /
                        static_cast<double>(span) * (kCols - 1)));
  };
  const auto paint = [&](std::string& row, std::uint64_t beginNs,
                         std::uint64_t endNs, char mark, bool force) {
    for (std::size_t c = colOf(beginNs); c <= colOf(endNs); ++c) {
      if (force || row[c] == ' ') row[c] = mark;
    }
  };

  forEachWorkerInterval(
      sorted, numThreads, t1,
      [&](std::uint16_t stream, WorkerInterval kind, std::uint64_t beginNs,
          std::uint64_t endNs, bool /*closed*/) {
        // Busy wins over idle ('force'): a one-column task in a starved
        // stretch must stay visible.
        if (kind == WorkerInterval::Busy) {
          paint(rows[stream], beginNs, endNs, '#', true);
        } else {
          paint(rows[stream], beginNs, endNs, '.', false);
        }
      });
  for (const IrqInterval& irq : irqIntervals(sorted, t1))
    paint(kernelRow, irq.beginNs, irq.endNs, 'I', true);

  std::string text;
  char line[160];
  std::snprintf(line, sizeof(line),
                "timeline: %.1fus, ~%.1fus/col ('#' task, '.' idle, "
                "'I' kernel burst)\n",
                static_cast<double>(span) / 1000.0,
                static_cast<double>(span) / 1000.0 / (kCols - 1));
  text += line;
  for (std::size_t t = 0; t < numThreads; ++t) {
    std::snprintf(line, sizeof(line), "  cpu%02zu |%s|\n", t,
                  rows[t].c_str());
    text += line;
  }
  std::snprintf(line, sizeof(line), "  kern  |%s|\n", kernelRow.c_str());
  text += line;
  return text;
}

}  // namespace ats
